//! The `G_bad` merge-by-identifier construction (paper, Lemma 5.1).
//!
//! Given a realization plan `{μ_i}`, `G_bad` is obtained by taking the
//! disjoint union of the `μ_i` and identifying nodes with equal
//! identifiers; edges, ports and labels are inherited from the views
//! (consistency is guaranteed by compatibility — and *checked* here, so a
//! bad plan is reported rather than silently realized).
//!
//! One model detail the one-page proof glosses over: a node that only ever
//! appears on the *boundary* (distance exactly r) of plan views may have
//! partial port information — say its only known edge uses port 3. A valid
//! port assignment requires ports `1..=d(v)`, so we attach fresh *dummy
//! pendant neighbors* to fill the missing lower ports. Dummies are
//! invisible to every plan view: a node with a port gap is never interior
//! to any view (interior nodes expose all their edges, hence complete
//! ports), so it sits at distance ≥ r from every center and its new edges
//! are beyond every realized view's horizon. Dummy verdicts are
//! irrelevant to strong-soundness violations, which only need the
//! realized subgraph's nodes to accept.

use crate::instance::{Instance, LabeledInstance};
use crate::label::{Certificate, Labeling};
use crate::realize::realizable::RealizationPlan;
use crate::view::View;
use hiding_lcp_graph::{Graph, IdAssignment, PortAssignment};
use std::collections::BTreeMap;
use std::fmt;

/// Why a plan could not be merged into a consistent instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RealizeError {
    /// The plan contains no views.
    EmptyPlan,
    /// Two views claim different ports for the same directed edge.
    PortConflict {
        /// The node whose port is contested.
        id: u64,
        /// The neighbor on the contested edge.
        other: u64,
        /// The two claimed port numbers.
        ports: (u16, u16),
    },
    /// Two views claim different labels for one identifier.
    LabelConflict {
        /// The doubly-labeled identifier.
        id: u64,
    },
    /// One node claims the same port for two different edges.
    PortReused {
        /// The offending node.
        id: u64,
        /// The reused port number.
        port: u16,
    },
}

impl fmt::Display for RealizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealizeError::EmptyPlan => write!(f, "realization plan is empty"),
            RealizeError::PortConflict { id, other, ports } => write!(
                f,
                "views disagree on prt({id}, {{{id},{other}}}): {} vs {}",
                ports.0, ports.1
            ),
            RealizeError::LabelConflict { id } => {
                write!(f, "views disagree on the label of {id}")
            }
            RealizeError::PortReused { id, port } => {
                write!(f, "node {id} uses port {port} for two edges")
            }
        }
    }
}

impl std::error::Error for RealizeError {}

/// The realized `G_bad` with its bookkeeping.
#[derive(Debug, Clone)]
pub struct Realization {
    /// The merged labeled instance.
    pub labeled: LabeledInstance,
    /// Graph node index of each original identifier.
    pub node_of_id: BTreeMap<u64, usize>,
    /// The dummy pendant nodes added to complete port assignments.
    pub dummy_nodes: Vec<usize>,
}

impl Realization {
    /// Checks that the realized instance reproduces `mu` exactly at the
    /// node carrying `mu`'s center identifier: the extracted view equals
    /// `mu`.
    pub fn reproduces(&self, mu: &View) -> bool {
        let Some(center) = mu.center_id() else {
            return false;
        };
        let Some(&node) = self.node_of_id.get(&center) else {
            return false;
        };
        self.labeled.view(node, mu.radius(), mu.id_mode()) == *mu
    }
}

/// Lemma 5.1: merges the plan's views into `G_bad`.
pub fn realize(plan: &RealizationPlan) -> Result<Realization, RealizeError> {
    if plan.mu.is_empty() {
        return Err(RealizeError::EmptyPlan);
    }
    // Claims gathered from every view: labels per id, ports per directed
    // id pair, edges.
    let mut labels: BTreeMap<u64, Certificate> = BTreeMap::new();
    let mut ports: BTreeMap<(u64, u64), u16> = BTreeMap::new();
    let mut bound = 0u64;
    for mu in plan.mu.values() {
        bound = bound.max(mu.id_bound());
        for a in 0..mu.node_count() {
            let id_a = mu.node(a).id.expect("Full id mode");
            bound = bound.max(id_a);
            match labels.get(&id_a) {
                None => {
                    labels.insert(id_a, mu.node(a).label.clone());
                }
                Some(prev) if *prev == mu.node(a).label => {}
                Some(_) => return Err(RealizeError::LabelConflict { id: id_a }),
            }
            for arc in &mu.node(a).arcs {
                let id_b = mu.node(arc.to).id.expect("Full id mode");
                // Both endpoints' ports travel with every visible edge.
                for (from, to, port) in [(id_a, id_b, arc.port_here), (id_b, id_a, arc.port_there)]
                {
                    match ports.get(&(from, to)) {
                        None => {
                            ports.insert((from, to), port);
                        }
                        Some(&prev) if prev == port => {}
                        Some(&prev) => {
                            return Err(RealizeError::PortConflict {
                                id: from,
                                other: to,
                                ports: (prev, port),
                            })
                        }
                    }
                }
            }
        }
    }
    // Per-node port tables; detect port reuse.
    let mut port_table: BTreeMap<u64, BTreeMap<u16, u64>> = BTreeMap::new();
    for (&(a, b), &p) in &ports {
        let entry = port_table.entry(a).or_default();
        if let Some(&prev_b) = entry.get(&p) {
            if prev_b != b {
                return Err(RealizeError::PortReused { id: a, port: p });
            }
        }
        entry.insert(p, b);
    }
    // Dense indexing of real identifiers.
    let real_ids: Vec<u64> = labels.keys().copied().collect();
    let mut node_of_id: BTreeMap<u64, usize> = real_ids
        .iter()
        .enumerate()
        .map(|(idx, &id)| (id, idx))
        .collect();
    // Dummy pendants to fill port gaps.
    let mut next_dummy_id = real_ids.iter().copied().max().unwrap_or(0) + 1;
    let mut all_ids = real_ids.clone();
    let mut dummy_nodes = Vec::new();
    let mut dummy_edges: Vec<(u64, u64)> = Vec::new(); // (owner, dummy)
    for (&id, table) in &mut port_table {
        let max_port = table.keys().copied().max().unwrap_or(0);
        for p in 1..=max_port {
            if let std::collections::btree_map::Entry::Vacant(e) = table.entry(p) {
                let dummy = next_dummy_id;
                next_dummy_id += 1;
                e.insert(dummy);
                dummy_edges.push((id, dummy));
                node_of_id.insert(dummy, all_ids.len());
                dummy_nodes.push(all_ids.len());
                all_ids.push(dummy);
            }
        }
    }
    // Dummy identifiers (if any were created) may exceed the bound.
    bound = bound.max(all_ids.iter().copied().max().unwrap_or(0));
    // Assemble the graph.
    let n = all_ids.len();
    let mut graph = Graph::new(n);
    for &(a, b) in ports.keys() {
        let (na, nb) = (node_of_id[&a], node_of_id[&b]);
        if na < nb {
            graph.add_edge(na, nb).expect("merged edges are valid");
        } else if !graph.has_edge(na, nb) {
            graph.add_edge(nb, na).expect("merged edges are valid");
        }
    }
    for &(owner, dummy) in &dummy_edges {
        graph
            .add_edge(node_of_id[&owner], node_of_id[&dummy])
            .expect("dummy edges are valid");
    }
    // Port order per node: claimed ports in numeric order, then dummies
    // already inserted into the tables; dummy nodes themselves get the
    // single port 1 to their owner.
    let mut order: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (&id, table) in &port_table {
        order[node_of_id[&id]] = table.values().map(|b| node_of_id[b]).collect();
    }
    for &(owner, dummy) in &dummy_edges {
        order[node_of_id[&dummy]] = vec![node_of_id[&owner]];
    }
    let Some(port_assignment) = PortAssignment::from_order(&graph, order) else {
        // Port numbers have gaps even after dummy insertion — can only
        // happen through inconsistent claims surviving earlier checks.
        return Err(RealizeError::EmptyPlan);
    };
    let ids =
        IdAssignment::from_ids(all_ids.clone(), bound).expect("merged identifiers are injective");
    let labeling = Labeling::new(
        all_ids
            .iter()
            .map(|id| labels.get(id).cloned().unwrap_or_default())
            .collect(),
    );
    let instance = Instance::new(graph, port_assignment, ids).expect("merged assignments fit");
    Ok(Realization {
        labeled: instance.with_labeling(labeling),
        node_of_id,
        dummy_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::realizable::find_plan;
    use crate::view::IdMode;
    use hiding_lcp_graph::generators;

    fn views_of(instance: &Instance, r: usize) -> Vec<View> {
        let labels = Labeling::empty(instance.graph().node_count());
        instance
            .graph()
            .nodes()
            .map(|v| instance.view(&labels, v, r, IdMode::Full))
            .collect()
    }

    #[test]
    fn single_instance_roundtrip() {
        // Realizing the full view set of one instance reconstructs it.
        for (g, r) in [
            (generators::cycle(6), 1usize),
            (generators::path(5), 2),
            (generators::grid(2, 3), 1),
        ] {
            let inst = Instance::canonical(g);
            let views = views_of(&inst, r);
            let plan = find_plan(&views, &[]).expect("self-realizable");
            let realization = realize(&plan).expect("merge succeeds");
            assert!(realization.dummy_nodes.is_empty(), "no boundary gaps");
            assert_eq!(
                realization.labeled.graph().node_count(),
                inst.graph().node_count()
            );
            assert_eq!(
                realization.labeled.graph().edge_count(),
                inst.graph().edge_count()
            );
            for mu in &views {
                assert!(realization.reproduces(mu), "view mismatch at r={r}");
            }
        }
    }

    #[test]
    fn partial_plans_reuse_pool_references() {
        // Realize only the center view of a path 1-2-3-4-5 (r = 1,
        // centered at id 3), with the instance's other views as the
        // reference pool. The merge reconstructs the whole path.
        let inst = Instance::canonical(generators::path(5));
        let views = views_of(&inst, 1);
        let plan = find_plan(&[views[2].clone()], &views).expect("pool supplies references");
        let realization = realize(&plan).expect("merge succeeds");
        assert!(realization.reproduces(&views[2]));
        assert!(
            realization.dummy_nodes.is_empty(),
            "canonical ports leave no gaps"
        );
    }

    #[test]
    fn boundary_port_gaps_grow_dummies() {
        // P6 where node 4 (id 5) reaches node 3 (id 4) through port 2:
        // realizing H = {view(node 2)} pulls in μ_4 = view(node 3), whose
        // boundary node id 5 exposes only its port-2 edge. The merge must
        // attach a dummy pendant on id 5's port 1 to keep the port
        // assignment valid.
        use hiding_lcp_graph::PortAssignment;
        let g = generators::path(6);
        let order = vec![
            vec![1],
            vec![0, 2],
            vec![1, 3],
            vec![2, 4],
            vec![5, 3], // port 1 -> node 5, port 2 -> node 3
            vec![4],
        ];
        let prt = PortAssignment::from_order(&g, order).unwrap();
        let inst = Instance::new(g, prt, hiding_lcp_graph::IdAssignment::canonical(6)).unwrap();
        let views = views_of(&inst, 1);
        let plan = find_plan(&[views[2].clone()], &views).expect("pool supplies references");
        let realization = realize(&plan).expect("merge succeeds");
        assert!(realization.reproduces(&views[2]));
        assert_eq!(realization.dummy_nodes.len(), 1, "id 5's port 1 gap");
        let d = realization.dummy_nodes[0];
        assert_eq!(realization.labeled.graph().degree(d), 1);
        let id5_node = realization.node_of_id[&5];
        assert!(realization.labeled.graph().has_edge(id5_node, d));
    }

    #[test]
    fn label_conflicts_are_reported() {
        use crate::realize::realizable::RealizationPlan;
        let inst = Instance::canonical(generators::path(2));
        let l0 = Labeling::uniform(2, Certificate::from_byte(0));
        let l1 = Labeling::uniform(2, Certificate::from_byte(1));
        let a = inst.view(&l0, 0, 1, IdMode::Full);
        let b = inst.view(&l1, 1, 1, IdMode::Full);
        let mut plan = RealizationPlan::default();
        plan.mu.insert(1, a);
        plan.mu.insert(2, b);
        assert!(matches!(
            realize(&plan),
            Err(RealizeError::LabelConflict { .. })
        ));
    }

    #[test]
    fn port_conflicts_are_reported() {
        use crate::realize::realizable::RealizationPlan;
        use hiding_lcp_graph::{IdAssignment, PortAssignment};
        // Two views of the star 1-{2,3} with different port assignments at
        // the center.
        let g = generators::star(2);
        let ids = IdAssignment::from_ids(vec![1, 2, 3], 9).unwrap();
        let p_a = PortAssignment::from_order(&g, vec![vec![1, 2], vec![0], vec![0]]).unwrap();
        let p_b = PortAssignment::from_order(&g, vec![vec![2, 1], vec![0], vec![0]]).unwrap();
        let ia = Instance::new(g.clone(), p_a, ids.clone()).unwrap();
        let ib = Instance::new(g, p_b, ids).unwrap();
        let labels = Labeling::empty(3);
        let mut plan = RealizationPlan::default();
        plan.mu.insert(1, ia.view(&labels, 0, 1, IdMode::Full));
        plan.mu.insert(2, ib.view(&labels, 1, 1, IdMode::Full));
        assert!(matches!(
            realize(&plan),
            Err(RealizeError::PortConflict { .. })
        ));
    }

    #[test]
    fn empty_plan_is_an_error() {
        assert!(matches!(
            realize(&RealizationPlan::default()),
            Err(RealizeError::EmptyPlan)
        ));
    }
}
