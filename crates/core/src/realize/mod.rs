//! Realizability of subgraphs of the accepting neighborhood graph
//! (paper, Section 5.1).
//!
//! Given a subgraph `H` of `V(D, n)`, when can it be *realized* — turned
//! into a concrete instance `G_bad` containing an isomorphic copy of `H`
//! whose nodes are all accepted by `D`? The paper's answer:
//!
//! * [`compat`] — the node/view *compatibility* relation (views agree on
//!   the radius-1 surroundings of shared interior identifiers);
//! * [`realizable`] — (component-wise) realizability: each identifier `i`
//!   appearing in `H` needs a reference view `μ_i` centered at `i` that
//!   every occurrence of `i` is compatible with; plus the Lemma 5.2
//!   identifier-block remapping that upgrades component-wise realizability
//!   to plain realizability for order-invariant decoders;
//! * [`gbad`] — the Lemma 5.1 merge-by-identifier construction of
//!   `G_bad`.

pub mod compat;
pub mod gbad;
pub mod realizable;

pub use compat::node_compatible;
pub use gbad::{realize, Realization, RealizeError};
pub use realizable::{
    check_realizable, find_plan, ids_in_views, make_component_ids_unique, s_i_indices,
    RealizationPlan,
};
