//! (Component-wise) realizability of view subgraphs (paper, Section 5.1)
//! and the Lemma 5.2 identifier-block remapping.

use crate::realize::compat::node_compatible;
use crate::view::View;
use std::collections::{BTreeMap, BTreeSet};

/// The reference views `μ_i` of the realizability definition: for each
/// identifier `i` appearing in `H`, a view centered at `i` that every
/// occurrence of `i` in `H` is compatible with.
#[derive(Debug, Clone, Default)]
pub struct RealizationPlan {
    /// `μ_i` keyed by identifier `i`.
    pub mu: BTreeMap<u64, View>,
}

/// All identifiers appearing in any of the views.
pub fn ids_in_views<'a>(views: impl IntoIterator<Item = &'a View>) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    for v in views {
        for node in v.nodes() {
            out.insert(node.id.expect("realizability requires Full id mode"));
        }
    }
    out
}

/// `S(i)`: the indices (into `views`) of the views in which identifier `i`
/// appears.
pub fn s_i_indices(views: &[View], i: u64) -> Vec<usize> {
    views
        .iter()
        .enumerate()
        .filter(|(_, v)| v.node_with_id(i).is_some())
        .map(|(idx, _)| idx)
        .collect()
}

/// Why a realizability check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unrealizable {
    /// No reference view `μ_i` was supplied (or found) for identifier `i`.
    MissingReference {
        /// The uncovered identifier.
        id: u64,
    },
    /// A supplied reference view is not centered at `i`.
    MiscenteredReference {
        /// The identifier whose reference is miscentered.
        id: u64,
    },
    /// The occurrence of `i` in the view at this index is incompatible
    /// with `μ_i`.
    Incompatible {
        /// The identifier in question.
        id: u64,
        /// Index into the checked view list.
        view: usize,
    },
    /// Two views of `H` share a center identifier but differ — the plan's
    /// forced choice of `μ_i` for center identifiers is contradictory.
    CenterClash {
        /// The doubly-used center identifier.
        id: u64,
    },
}

/// Checks realizability of the view set `views` (the nodes of a candidate
/// subgraph `H` of `V(D, n)`) under `plan`.
///
/// Per the observation in Lemma 5.1, for identifiers that are centers of
/// views in `H` the reference view is forced to be that very view; this is
/// verified too.
pub fn check_realizable(views: &[View], plan: &RealizationPlan) -> Result<(), Unrealizable> {
    // Forced center references.
    let mut centers: BTreeMap<u64, &View> = BTreeMap::new();
    for v in views {
        let c = v.center_id().expect("Full id mode");
        if let Some(prev) = centers.insert(c, v) {
            if prev != v {
                return Err(Unrealizable::CenterClash { id: c });
            }
        }
    }
    for (id, forced) in &centers {
        match plan.mu.get(id) {
            Some(mu) if mu == *forced => {}
            _ => {
                // The plan must contain exactly the view of H for center
                // identifiers.
                return Err(Unrealizable::MissingReference { id: *id });
            }
        }
    }
    for i in ids_in_views(views) {
        let Some(mu_i) = plan.mu.get(&i) else {
            return Err(Unrealizable::MissingReference { id: i });
        };
        if mu_i.center_id() != Some(i) {
            return Err(Unrealizable::MiscenteredReference { id: i });
        }
        for idx in s_i_indices(views, i) {
            let u = views[idx].node_with_id(i).expect("i appears in S(i)");
            if !node_compatible(&views[idx], u, mu_i) {
                return Err(Unrealizable::Incompatible { id: i, view: idx });
            }
        }
    }
    Ok(())
}

/// Searches `pool` (plus `views` themselves) for a plan making `views`
/// realizable: for every identifier the first candidate view centered at
/// it that is compatible with all of `S(i)`.
///
/// Returns the plan, or the first identifier for which no candidate works.
pub fn find_plan(views: &[View], pool: &[View]) -> Result<RealizationPlan, Unrealizable> {
    let mut plan = RealizationPlan::default();
    // Center identifiers are forced.
    for v in views {
        let c = v.center_id().expect("Full id mode");
        if let Some(prev) = plan.mu.insert(c, v.clone()) {
            if prev != *v {
                return Err(Unrealizable::CenterClash { id: c });
            }
        }
    }
    for i in ids_in_views(views) {
        if plan.mu.contains_key(&i) {
            continue;
        }
        let occurrences = s_i_indices(views, i);
        let candidate = pool
            .iter()
            .filter(|mu| mu.center_id() == Some(i))
            .find(|mu| {
                occurrences.iter().all(|&idx| {
                    let u = views[idx].node_with_id(i).expect("i appears");
                    node_compatible(&views[idx], u, mu)
                })
            });
        match candidate {
            Some(mu) => {
                plan.mu.insert(i, mu.clone());
            }
            None => return Err(Unrealizable::MissingReference { id: i }),
        }
    }
    // Validate the forced center choices too.
    check_realizable(views, &plan)?;
    Ok(plan)
}

/// Lemma 5.2's identifier-block remapping: given the views of `H` and a
/// partition of the occurrences of each identifier into *components*
/// (`component_of(i, view_index)`), replaces identifier `i` in component
/// `c` by the fresh identifier `(i − 1)·|V(H)| + c + 1` from the block
/// `I_i = [(i−1)|V(H)| + 1, i|V(H)|]`.
///
/// The blocks preserve relative identifier order (`i < j` implies every
/// member of `I_i` precedes every member of `I_j`), so an order-invariant
/// decoder's verdicts are unchanged — exactly the paper's argument. The
/// largest identifier produced is `Δ^r |V(H)|²`-bounded as in the lemma.
///
/// # Panics
///
/// Panics if `component_of` returns a component number `≥ |V(H)|` (the
/// lemma's observation that `S(i)` has at most `|V(H)|` components), or if
/// the remapping merges identifiers inside one view.
pub fn make_component_ids_unique<F>(views: &[View], component_of: F) -> Vec<View>
where
    F: Fn(u64, usize) -> usize,
{
    let block = views.len() as u64;
    views
        .iter()
        .enumerate()
        .map(|(idx, v)| {
            v.remap_ids(|i| {
                let c = component_of(i, idx) as u64;
                assert!(c < block, "S(i) has at most |V(H)| components");
                (i - 1) * block + c + 1
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::label::Labeling;
    use crate::view::IdMode;
    use hiding_lcp_graph::{generators, IdAssignment};

    fn path_views(ids: Vec<u64>, r: usize) -> Vec<View> {
        let n = ids.len();
        let bound = 64;
        let inst = Instance::with_ids(
            generators::path(n),
            IdAssignment::from_ids(ids, bound).unwrap(),
        )
        .unwrap();
        let labels = Labeling::empty(n);
        (0..n)
            .map(|v| inst.view(&labels, v, r, IdMode::Full))
            .collect()
    }

    #[test]
    fn single_instance_subgraph_is_realizable() {
        let views = path_views(vec![1, 2, 3, 4], 1);
        let plan = find_plan(&views, &[]).expect("one instance realizes itself");
        assert_eq!(plan.mu.len(), 4);
        assert!(check_realizable(&views, &plan).is_ok());
    }

    #[test]
    fn conflicting_roles_are_unrealizable() {
        // Two views both centered at id 2 but with different neighbor
        // sets: H cannot contain both.
        let a = path_views(vec![1, 2, 3], 1); // 2 adjacent to {1, 3}
        let b = path_views(vec![4, 2, 5], 1); // 2 adjacent to {4, 5}
        let views = vec![a[1].clone(), b[1].clone()];
        assert!(matches!(
            find_plan(&views, &[]),
            Err(Unrealizable::CenterClash { id: 2 })
        ));
    }

    #[test]
    fn missing_reference_is_detected() {
        // H = a single view; its neighbor identifiers need references,
        // which the empty pool cannot supply... except the observation
        // that non-center ids also demand μ_i. Here id 1 and id 3 appear
        // only as neighbors.
        let views = vec![path_views(vec![1, 2, 3], 1)[1].clone()];
        let err = find_plan(&views, &[]).expect_err("no references for 1 and 3");
        assert_eq!(err, Unrealizable::MissingReference { id: 1 });
        // Supplying the sibling views as a pool fixes it.
        let pool = path_views(vec![1, 2, 3], 1);
        assert!(find_plan(&views, &pool).is_ok());
    }

    #[test]
    fn incompatible_pool_candidates_are_rejected() {
        // H = center view of path 1-2-3 (r = 2, so neighbors are
        // interior). A pool view centered at 1 from a different world
        // (1 adjacent to 9) is incompatible.
        let views = vec![path_views(vec![1, 2, 3], 2)[1].clone()];
        let bad_pool = path_views(vec![2, 1, 9], 2); // 1 adjacent to {2, 9}
        let err = find_plan(&views, &[bad_pool[1].clone()]).expect_err("wrong neighborhood");
        assert_eq!(err, Unrealizable::MissingReference { id: 1 });
        let good_pool = path_views(vec![1, 2, 3], 2);
        assert!(find_plan(&views, &good_pool).is_ok());
    }

    #[test]
    fn check_realizable_flags_incompatibility() {
        let views = vec![path_views(vec![1, 2, 3], 2)[1].clone()];
        let mut plan = RealizationPlan::default();
        plan.mu.insert(2, views[0].clone());
        let other = path_views(vec![2, 1, 9], 2);
        plan.mu.insert(1, other[1].clone()); // centered at 1, wrong world
        let good = path_views(vec![1, 2, 3], 2);
        plan.mu.insert(3, good[2].clone());
        assert_eq!(
            check_realizable(&views, &plan),
            Err(Unrealizable::Incompatible { id: 1, view: 0 })
        );
    }

    #[test]
    fn miscentered_reference_is_flagged() {
        let views = vec![path_views(vec![1, 2], 1)[0].clone()];
        let mut plan = RealizationPlan::default();
        plan.mu.insert(1, views[0].clone());
        // Reference for id 2 centered at 1 — miscentered.
        plan.mu.insert(2, views[0].clone());
        assert_eq!(
            check_realizable(&views, &plan),
            Err(Unrealizable::MiscenteredReference { id: 2 })
        );
    }

    #[test]
    fn lemma_5_2_remapping_preserves_order_and_splits_roles() {
        // Two conflicting center-2 views (as above) become realizable
        // after giving each occurrence of id 2 its own block member.
        let a = path_views(vec![1, 2, 3], 1);
        let b = path_views(vec![4, 2, 5], 1);
        let views = vec![a[1].clone(), b[1].clone()];
        // Component: occurrences in view 0 -> component 0, view 1 -> 1.
        let remapped = make_component_ids_unique(&views, |_i, idx| idx);
        let c0 = remapped[0].center_id().unwrap();
        let c1 = remapped[1].center_id().unwrap();
        assert_ne!(c0, c1, "blocks split the shared identifier");
        // Order preservation: original 1 < 2 < 3 < 4 < 5; every image of i
        // lies in the block I_i = [(i-1)·2 + 1, i·2], so blocks (and hence
        // relative order) are respected, and the largest image is 5·2.
        let all = ids_in_views(&remapped);
        assert!(*all.iter().max().unwrap() <= 10, "within the I_i blocks");
        assert_eq!(remapped[0].center_id(), Some(3)); // 2 -> block I_2, member 1
        assert_eq!(remapped[1].center_id(), Some(4)); // 2 -> block I_2, member 2
                                                      // The two views no longer clash on centers.
        assert!(matches!(
            find_plan(&remapped, &[]),
            Err(Unrealizable::MissingReference { .. })
        ));
    }

    #[test]
    fn s_i_and_ids_helpers() {
        let views = path_views(vec![1, 2, 3], 1);
        assert_eq!(ids_in_views(&views), BTreeSet::from([1, 2, 3]));
        assert_eq!(s_i_indices(&views, 2), vec![0, 1, 2]);
        assert_eq!(s_i_indices(&views, 3), vec![1, 2]);
        assert_eq!(s_i_indices(&views, 9), Vec::<usize>::new());
    }
}
