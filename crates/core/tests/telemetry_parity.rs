//! Determinism contract of the sweep telemetry layer.
//!
//! The recorder must be an *observer*: attaching one never changes a
//! verdict, and the **stable** counter section is a pure function of
//! (universe, check, strategy) — byte-identical across repeated runs and
//! across execution modes. The CI matrix runs this suite with
//! `PARITY_THREADS` set to 1, 2 and 4; locally it defaults to 3.
//!
//! Observed counters (`memo_*`, `verdict_decisions`, `interner_*`) are
//! allowed to move with scheduling, but still satisfy structural
//! invariants: every decision either hits or misses the memo, and a
//! quotient walk's orbit multiplicities partition the labeling space.

use std::sync::Arc;

use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::Certificate;
use hiding_lcp_core::language::KCol;
use hiding_lcp_core::lower::PortObliviousCycleDecoder;
use hiding_lcp_core::properties::soundness::SoundnessCheck;
use hiding_lcp_core::properties::strong::StrongCheck;
use hiding_lcp_core::verify::{
    Coverage, DynPropertyCheck, ExecMode, ItemCtx, MetricsRecorder, PropertyCheck, PropertyTag,
    SweepOpts, SweepOutcome, SweepSession, SymmetrySpec, Universe, UniverseItem,
};

fn bits() -> Vec<Certificate> {
    vec![Certificate::from_byte(0), Certificate::from_byte(1)]
}

/// Thread count for the parallel side of every parity assertion.
fn parity_threads() -> usize {
    std::env::var("PARITY_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(3)
}

/// A cycle under the rotation-symmetric port assignment, so the quotient
/// strategy actually engages.
fn symmetric_cycle(n: usize) -> Instance {
    let g = hiding_lcp_graph::generators::cycle(n);
    let ports = hiding_lcp_graph::ports::cycle_symmetric(&g);
    Instance::new(g, ports, hiding_lcp_graph::IdAssignment::canonical(n))
        .expect("symmetric cycle ports are valid")
}

/// An exhaustive labeling universe big enough (2^7 = 128 items) that
/// `ExecMode::Parallel` really runs parallel (`PARALLEL_THRESHOLD` = 64).
fn big_universe() -> Universe {
    Universe::all_labelings_of(symmetric_cycle(7), bits(), Coverage::Exhaustive)
        .expect("small universe fits")
}

/// Code 0 rejects every view: no soundness violation exists, so the sweep
/// never short-circuits and every mode walks the whole universe.
fn full_walk_decoder() -> PortObliviousCycleDecoder {
    PortObliviousCycleDecoder::from_code(0)
}

/// A check that declares full symmetry (port automorphisms plus one
/// interchangeable certificate class), forcing the quotient to bite.
struct OrbitProbe {
    k: usize,
}

impl PropertyCheck for OrbitProbe {
    type Partial = u64;
    type Verdict = u64;

    fn inspect(&self, _item: &UniverseItem<'_>, ctx: &ItemCtx<'_>) -> Option<u64> {
        Some(ctx.multiplicity())
    }

    fn symmetry_class(&self, _alphabet: &[Certificate]) -> Option<SymmetrySpec> {
        Some(SymmetrySpec {
            automorphisms: true,
            alphabet_classes: Some(vec![0; self.k]),
        })
    }

    fn reduce(
        &self,
        _universe: &Universe,
        partials: Vec<(usize, u64)>,
        _outcome: &SweepOutcome,
    ) -> u64 {
        partials.into_iter().map(|(_, m)| m).sum()
    }
}

fn panel_members<'a>(
    decoder: &'a PortObliviousCycleDecoder,
    two_col: &'a KCol,
) -> [DynPropertyCheck<'a>; 2] {
    [
        DynPropertyCheck::new(
            PropertyTag::Soundness,
            "soundness",
            SoundnessCheck { decoder },
        )
        .with_channel(decoder),
        DynPropertyCheck::new(
            PropertyTag::Strong,
            "strong",
            StrongCheck {
                decoder,
                language: two_col,
            },
        )
        .with_channel(decoder),
    ]
}

/// Attaching a recorder never changes what a sweep reports — in either
/// feature configuration (the disabled build's recorder is inert), in
/// both execution modes, under every strategy.
#[test]
fn recorded_sweeps_match_plain_sweeps() {
    let decoder = full_walk_decoder();
    let universe = big_universe();
    let check = SoundnessCheck { decoder: &decoder };
    for mode in [ExecMode::Sequential, ExecMode::Parallel(parity_threads())] {
        for opts in [
            SweepOpts::default(),
            SweepOpts::oracle(),
            SweepOpts::quotient(),
        ] {
            let plain = SweepSession::over(&universe)
                .mode(mode)
                .opts(opts)
                .run(&check);
            let recorder = MetricsRecorder::new();
            let recorded = SweepSession::over(&universe)
                .mode(mode)
                .opts(opts)
                .metrics(&recorder)
                .run(&check);
            assert_eq!(plain.verdict, recorded.verdict);
            assert_eq!(plain.checked, recorded.checked);
            assert_eq!(plain.universe_size, recorded.universe_size);
            assert_eq!(plain.short_circuited, recorded.short_circuited);
            assert_eq!(plain.coverage, recorded.coverage);
        }
    }
}

/// Same contract for fused panels: recorder attachment is invisible in
/// every member's verdict line.
#[test]
fn recorded_panels_match_plain_panels() {
    let decoder = full_walk_decoder();
    let two_col = KCol::new(2);
    let universe = big_universe();
    let members = panel_members(&decoder, &two_col);
    for mode in [ExecMode::Sequential, ExecMode::Parallel(parity_threads())] {
        let plain = SweepSession::over(&universe)
            .mode(mode)
            .opts(SweepOpts::default())
            .run_panel(&members);
        let recorder = MetricsRecorder::new();
        let recorded = SweepSession::over(&universe)
            .mode(mode)
            .opts(SweepOpts::default())
            .metrics(&recorder)
            .run_panel(&members);
        assert_eq!(plain.evidence.checked, recorded.evidence.checked);
        assert_eq!(
            plain.evidence.short_circuited,
            recorded.evidence.short_circuited
        );
        for (a, b) in plain.members.iter().zip(&recorded.members) {
            assert_eq!(a.checked, b.checked);
            assert_eq!(a.short_circuited, b.short_circuited);
            assert_eq!(a.verdict.passed, b.verdict.passed);
            assert_eq!(a.verdict.detail, b.verdict.detail);
        }
    }
}

#[cfg(feature = "telemetry")]
mod enabled {
    use super::*;

    /// The stable counter section renders to the same bytes on every
    /// run and in every execution mode. (The observed section may move:
    /// chunk boundaries change how many full verdict recomputes happen.)
    #[test]
    fn stable_counters_are_byte_identical_across_runs_and_modes() {
        let decoder = full_walk_decoder();
        let universe = big_universe();
        let check = SoundnessCheck { decoder: &decoder };
        let run = |mode: ExecMode| {
            let recorder = MetricsRecorder::new();
            SweepSession::over(&universe)
                .mode(mode)
                .metrics(&recorder)
                .run(&check);
            recorder.snapshot().stable_bytes()
        };
        let reference = run(ExecMode::Sequential);
        assert!(!reference.is_empty());
        assert!(reference.contains("items_walked=128\n"), "{reference}");
        for _ in 0..2 {
            assert_eq!(reference, run(ExecMode::Sequential), "sequential rerun");
            assert_eq!(
                reference,
                run(ExecMode::Parallel(parity_threads())),
                "parallel at {} threads",
                parity_threads()
            );
        }
    }

    /// Panel stable counters obey the same contract, member-summed.
    #[test]
    fn panel_stable_counters_are_byte_identical_across_modes() {
        let decoder = full_walk_decoder();
        let two_col = KCol::new(2);
        let universe = big_universe();
        let members = panel_members(&decoder, &two_col);
        let run = |mode: ExecMode| {
            let recorder = MetricsRecorder::new();
            SweepSession::over(&universe)
                .mode(mode)
                .metrics(&recorder)
                .run_panel(&members);
            recorder.snapshot().stable_bytes()
        };
        let reference = run(ExecMode::Sequential);
        // Two members, complete walk: every index is walked once per member.
        assert!(reference.contains("items_walked=256\n"), "{reference}");
        assert_eq!(reference, run(ExecMode::Sequential));
        assert_eq!(reference, run(ExecMode::Parallel(parity_threads())));
    }

    /// A complete quotient walk partitions the labeling space: skipped
    /// and inspected items tile the walk, and the inspected orbits'
    /// multiplicities re-weight to exactly |Sigma|^n.
    #[test]
    fn quotient_snapshot_satisfies_the_partition_invariant() {
        let universe = big_universe();
        let check = OrbitProbe { k: 2 };
        let recorder = MetricsRecorder::new();
        let report = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .opts(SweepOpts::quotient())
            .metrics(&recorder)
            .run(&check);
        let snap = recorder.snapshot();
        let get = |name: &str| snap.get(name).unwrap_or_else(|| panic!("no {name}"));
        let total = universe.len() as u64;
        assert_eq!(get("items_walked"), total);
        assert_eq!(
            get("items_inspected") + get("items_orbit_skipped"),
            get("items_walked"),
            "inspected and skipped tile the walk"
        );
        assert_eq!(
            get("orbit_multiplicity"),
            total,
            "orbit multiplicities sum to |Sigma|^n"
        );
        assert!(get("items_orbit_skipped") > 0, "the quotient engaged");
        assert_eq!(get("quotient_blocks"), 1);
        // The check's own reduction agrees with the recorder.
        assert_eq!(report.verdict, total);
    }

    /// Delta-stepping channel accounting: every verdict decision either
    /// hit or missed the digit-key memo, and each walked item was either
    /// refreshed or read back.
    #[test]
    fn memo_and_refresh_counters_tile_the_decision_stream() {
        let decoder = full_walk_decoder();
        let two_col = KCol::new(2);
        let universe = big_universe();
        let members = panel_members(&decoder, &two_col);
        for mode in [ExecMode::Sequential, ExecMode::Parallel(parity_threads())] {
            let recorder = MetricsRecorder::new();
            SweepSession::over(&universe)
                .mode(mode)
                .metrics(&recorder)
                .run_panel(&members);
            let snap = recorder.snapshot();
            let get = |name: &str| snap.get(name).unwrap_or_else(|| panic!("no {name}"));
            assert_eq!(
                get("memo_hits") + get("memo_misses"),
                get("verdict_decisions"),
                "every decision consults the memo exactly once"
            );
            assert_eq!(
                get("verdict_refreshes") + get("verdict_readbacks"),
                get("items_walked"),
                "every member-evaluation refreshes or reads back"
            );
        }
    }

    /// With an injected manual clock the whole observability document —
    /// counters, phase histograms, spans — is byte-deterministic.
    #[test]
    fn manual_clock_makes_the_full_document_deterministic() {
        use hiding_lcp_core::verify::telemetry::ManualClock;
        let decoder = full_walk_decoder();
        let universe = big_universe();
        let check = SoundnessCheck { decoder: &decoder };
        let run = || {
            let recorder = MetricsRecorder::with_clock(Arc::new(ManualClock::default()));
            SweepSession::over(&universe)
                .mode(ExecMode::Sequential)
                .metrics(&recorder)
                .run(&check);
            (recorder.metrics_json(), recorder.trace_json())
        };
        let (metrics_a, trace_a) = run();
        let (metrics_b, trace_b) = run();
        assert_eq!(metrics_a, metrics_b, "metrics document is reproducible");
        assert_eq!(trace_a, trace_b, "trace document is reproducible");
    }

    /// Every span a sweep opens it closes, and the export is a valid
    /// Chrome `trace_event` document.
    #[test]
    fn trace_is_balanced_and_chrome_shaped() {
        let decoder = full_walk_decoder();
        let two_col = KCol::new(2);
        let universe = big_universe();
        let members = panel_members(&decoder, &two_col);
        let recorder = MetricsRecorder::new();
        SweepSession::over(&universe)
            .mode(ExecMode::Parallel(parity_threads()))
            .metrics(&recorder)
            .run_panel(&members);
        assert!(recorder.trace_balanced(), "all spans closed");
        assert_eq!(recorder.trace_dropped(), 0);
        let json = recorder.trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"B\"") && json.contains("\"ph\": \"E\""));
        assert!(json.contains("\"name\": \"panel\""));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }
}
