//! Property-based parity between the verification engine's parallel
//! executor and its sequential fallback.
//!
//! The executor's contract (see `verify::executor` module docs) is that
//! parallel and sequential sweeps are observationally identical: same
//! verdict, same witness (the lowest-indexed violation), same
//! checked-count, same short-circuit flag. This suite hammers that
//! contract with random decoders over random instance universes, and
//! extends it to the resilience layer: lazy sweeps match flat sweeps,
//! interrupted-and-resumed sweeps match uninterrupted ones, and a
//! panicking item becomes the same structured [`SweepError`] under every
//! execution mode. `cache_hits`/`cache_misses`/`memo_*` are deliberately
//! *not* compared — a parallel short-circuiting sweep may inspect items
//! beyond the final witness, so its cache traffic can legitimately differ.
//!
//! The suite also proves the engine's enumeration strategies equivalent:
//! the odometer/delta-evaluation hot path (`SweepStrategy::DeltaStepping`,
//! with and without digit-key memoization) against the decode-from-index
//! oracle (`SweepStrategy::DecodeOracle`), over exhaustive, mixed-source
//! and multi-block universes, including budgeted resume chains and the
//! full structural identity of Lemma 3.1 neighborhood graphs.
//!
//! The parallel thread count defaults to 3 and can be pinned via the
//! `PARITY_THREADS` environment variable (the CI matrix runs 1, 2 and 4).
//!
//! [`SweepError`]: hiding_lcp_core::verify::SweepError

use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::language::KCol;
use hiding_lcp_core::lower::PortObliviousCycleDecoder;
use hiding_lcp_core::nbhd::NbhdGraph;
use hiding_lcp_core::properties::hiding::HidingCheck;
use hiding_lcp_core::properties::soundness::{SoundnessCheck, SoundnessViolation};
use hiding_lcp_core::properties::strong::{StrongCheck, StrongViolation};
use hiding_lcp_core::prover::all_labelings;
use hiding_lcp_core::verify::{
    merge_panel_fragments, Block, Coverage, DynPropertyCheck, ExecMode, ItemCtx, LabelSource,
    LazySweep, PropertyCheck, PropertyTag, ShardSpec, SweepBudget, SweepOpts, SweepOutcome,
    SweepSession, Universe, UniverseItem,
};
use hiding_lcp_core::view::IdMode;
use hiding_lcp_graph::algo::bipartite;
use proptest::prelude::*;

fn bits() -> Vec<Certificate> {
    vec![Certificate::from_byte(0), Certificate::from_byte(1)]
}

/// Thread count for the parallel side of every parity assertion. The CI
/// matrix sets `PARITY_THREADS` to 1, 2 and 4; locally it defaults to 3.
fn parity_threads() -> usize {
    std::env::var("PARITY_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(3)
}

fn cycle_or_path(shape: u8, n: usize) -> Instance {
    if shape.is_multiple_of(2) {
        Instance::canonical(hiding_lcp_graph::generators::cycle(n))
    } else {
        Instance::canonical(hiding_lcp_graph::generators::path(n))
    }
}

/// Runs `check` both ways and asserts the reports agree observationally.
fn assert_parity<C>(check: &C, universe: &Universe) -> Result<(), TestCaseError>
where
    C: PropertyCheck,
    C::Verdict: PartialEq + std::fmt::Debug,
{
    let seq = SweepSession::over(universe)
        .mode(ExecMode::Sequential)
        .run(check);
    let par = SweepSession::over(universe)
        .mode(ExecMode::Parallel(parity_threads()))
        .run(check);
    prop_assert_eq!(&seq.verdict, &par.verdict);
    prop_assert_eq!(seq.checked, par.checked);
    prop_assert_eq!(seq.universe_size, par.universe_size);
    prop_assert_eq!(seq.short_circuited, par.short_circuited);
    Ok(())
}

/// Runs `check` under two option sets (sequentially and in parallel) and
/// asserts the four observational report fields agree across all runs.
/// Counters (`cache_*`, `memo_*`) are exactly what the options are allowed
/// to change, so they are not compared.
fn assert_opts_parity<C>(
    check: &C,
    universe: &Universe,
    a: SweepOpts,
    b: SweepOpts,
) -> Result<(), TestCaseError>
where
    C: PropertyCheck,
    C::Verdict: PartialEq + std::fmt::Debug,
{
    let reference = SweepSession::over(universe)
        .mode(ExecMode::Sequential)
        .opts(a)
        .run(check);
    for (mode, opts) in [
        (ExecMode::Sequential, b),
        (ExecMode::Parallel(parity_threads()), a),
        (ExecMode::Parallel(parity_threads()), b),
    ] {
        let other = SweepSession::over(universe)
            .mode(mode)
            .opts(opts)
            .run(check);
        prop_assert_eq!(&reference.verdict, &other.verdict);
        prop_assert_eq!(reference.checked, other.checked);
        prop_assert_eq!(reference.universe_size, other.universe_size);
        prop_assert_eq!(reference.short_circuited, other.short_circuited);
    }
    Ok(())
}

/// A universe mixing every [`LabelSource`] shape: exhaustive labelings of
/// a cycle (odometer + delta path), a fixed labeling batch of a path
/// (plain-inspect path), and one unlabeled instance.
fn mixed_universe(n: usize) -> Universe {
    let cycle = Instance::canonical(hiding_lcp_graph::generators::cycle(n));
    let path = Instance::canonical(hiding_lcp_graph::generators::path(n));
    let fixed = vec![
        Labeling::uniform(n, Certificate::from_byte(1)),
        Labeling::uniform(n, Certificate::from_byte(0)),
    ];
    let blocks = vec![
        Block::new(cycle, LabelSource::All { alphabet: bits() }),
        Block::new(path.clone(), LabelSource::Fixed(fixed)),
        Block::new(path, LabelSource::Unlabeled),
    ];
    Universe::new(blocks, Coverage::Sampled).expect("small universe fits")
}

/// Structural equality of two neighborhood graphs — `NbhdGraph` has no
/// `PartialEq`, so compare every observable: views (in insertion order),
/// adjacency, self-loops and all witnesses.
fn assert_nbhd_eq(a: &NbhdGraph, b: &NbhdGraph) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.view_count(), b.view_count());
    prop_assert_eq!(a.views(), b.views());
    prop_assert_eq!(a.edge_count(), b.edge_count());
    prop_assert_eq!(a.self_loop_views(), b.self_loop_views());
    prop_assert_eq!(a.instances().len(), b.instances().len());
    for i in 0..a.view_count() {
        prop_assert_eq!(a.view_witness(i), b.view_witness(i));
        let na: Vec<usize> = a.neighbors(i).collect();
        let nb: Vec<usize> = b.neighbors(i).collect();
        prop_assert_eq!(&na, &nb);
        for &j in &na {
            prop_assert_eq!(a.edge_witness(i, j), b.edge_witness(i, j));
        }
        prop_assert_eq!(a.self_loop_witness(i), b.self_loop_witness(i));
    }
    Ok(())
}

/// A universe of whole-cycle blocks (odd cycles included, so the hiding
/// sweep's yes-filter drops some blocks entirely).
fn cycle_blocks_universe(max_n: usize) -> Universe {
    let blocks = (3..=max_n)
        .map(|m| {
            Block::new(
                Instance::canonical(hiding_lcp_graph::generators::cycle(m)),
                LabelSource::All { alphabet: bits() },
            )
        })
        .collect();
    Universe::new(blocks, Coverage::Sampled).expect("small universe fits")
}

/// Wraps a check so that inspecting item `panic_index` panics — the test
/// double for a decoder crashing mid-sweep.
struct PanicOn<'a, C> {
    inner: &'a C,
    panic_index: usize,
}

impl<C: PropertyCheck> PropertyCheck for PanicOn<'_, C> {
    type Partial = C::Partial;
    type Verdict = C::Verdict;

    fn view_configs(&self) -> Vec<(usize, IdMode)> {
        self.inner.view_configs()
    }

    fn inspect(&self, item: &UniverseItem<'_>, ctx: &ItemCtx<'_>) -> Option<Self::Partial> {
        assert!(
            item.index != self.panic_index,
            "rigged panic at {}",
            self.panic_index
        );
        self.inner.inspect(item, ctx)
    }

    fn short_circuits(&self, partial: &Self::Partial) -> bool {
        self.inner.short_circuits(partial)
    }

    fn reduce(
        &self,
        universe: &Universe,
        partials: Vec<(usize, Self::Partial)>,
        outcome: &SweepOutcome,
    ) -> Self::Verdict {
        self.inner.reduce(universe, partials, outcome)
    }
}

/// Swaps in a silent panic hook around `f` so expected panics don't spam
/// the test output.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn soundness_sweeps_agree(code in 0u8..64, shape in 0u8..2, n in 3usize..7) {
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        assert_parity(&check, &universe)?;
    }

    #[test]
    fn strong_sweeps_agree(code in 0u8..64, shape in 0u8..2, n in 3usize..7) {
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let two_col = KCol::new(2);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = StrongCheck { decoder: &decoder, language: &two_col };
        assert_parity(&check, &universe)?;
    }

    #[test]
    fn multi_block_sweeps_agree(code in 0u8..64, n in 3usize..6) {
        // Universes spanning several blocks exercise the chunked
        // work-stealing across block boundaries.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let blocks = (3..=n + 1)
            .map(|m| {
                hiding_lcp_core::verify::Block::new(
                    Instance::canonical(hiding_lcp_graph::generators::cycle(m)),
                    hiding_lcp_core::verify::LabelSource::All { alphabet: bits() },
                )
            })
            .collect();
        let universe = Universe::new(blocks, Coverage::Sampled).expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        assert_parity(&check, &universe)?;
    }

    #[test]
    fn lazy_and_flat_sweeps_agree(code in 0u8..64, shape in 0u8..2, n in 3usize..7) {
        // `LazySweep` over the mixed-radix enumeration must match a
        // session sweep of the flat universe: same verdict, same witness,
        // same checked count, same short-circuit flag.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance.clone(), bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        let flat = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .run(&check);
        let alphabet = bits();
        let lazy = LazySweep::of(&instance, Coverage::Exhaustive).run(
            &check,
            all_labelings(instance.graph().node_count(), &alphabet),
        );
        prop_assert_eq!(&flat.verdict, &lazy.verdict);
        prop_assert_eq!(flat.checked, lazy.checked);
        prop_assert_eq!(flat.short_circuited, lazy.short_circuited);
        prop_assert_eq!(flat.coverage, lazy.coverage);
    }

    #[test]
    fn resume_token_round_trip_reproduces_uninterrupted_report(
        code in 0u8..64, shape in 0u8..2, n in 3usize..7, step in 1usize..12,
    ) {
        // Chop the sweep into `step`-item budget slices (run in parallel
        // mode), chaining each slice's ResumeToken into the next; the final
        // report must be indistinguishable from one uninterrupted
        // sequential sweep.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        let full = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .run(&check);

        let mode = ExecMode::Parallel(parity_threads());
        let budget = SweepBudget::unlimited().with_max_items(step);
        let session = SweepSession::over(&universe).mode(mode).budget(budget);
        let mut state = session.run_budgeted(&check);
        let mut slices = 1usize;
        while let Some(token) = state.resume.take() {
            state = session.resume(&check, token);
            slices += 1;
            prop_assert!(slices <= universe.len() + 2, "resume chain must terminate");
        }
        let resumed = state.report;
        prop_assert_eq!(&full.verdict, &resumed.verdict);
        prop_assert_eq!(full.checked, resumed.checked);
        prop_assert_eq!(full.universe_size, resumed.universe_size);
        prop_assert_eq!(full.short_circuited, resumed.short_circuited);
        prop_assert_eq!(full.coverage, resumed.coverage);
        prop_assert!(!resumed.interrupted);
        prop_assert!(resumed.errors.is_empty());
    }

    #[test]
    fn panicking_item_yields_the_same_error_in_every_mode(
        panic_index in 0usize..32, threads in 1usize..5,
    ) {
        // A decoder blowing up mid-sweep must surface as a structured
        // SweepError naming the offending item — identically under
        // sequential and 1..4-thread parallel execution, with the verdict
        // computed from the surviving items agreeing across modes. Code 0
        // rejects every view, so the sweep never short-circuits and every
        // mode is guaranteed to reach the rigged item.
        let decoder = PortObliviousCycleDecoder::from_code(0);
        let instance = Instance::canonical(hiding_lcp_graph::generators::cycle(5));
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let inner = SoundnessCheck { decoder: &decoder };
        let check = PanicOn { inner: &inner, panic_index };

        let (seq, par) = quietly(|| {
            (
                SweepSession::over(&universe)
                    .mode(ExecMode::Sequential)
                    .run(&check),
                SweepSession::over(&universe)
                    .mode(ExecMode::Parallel(threads))
                    .run(&check),
            )
        });
        for report in [&seq, &par] {
            prop_assert_eq!(report.errors.len(), 1);
            prop_assert_eq!(report.errors[0].item_index, panic_index);
            prop_assert!(report.errors[0].payload.contains("rigged panic"));
            // A sweep that lost an item cannot claim exhaustiveness.
            prop_assert_eq!(report.coverage, Coverage::Sampled);
        }
        prop_assert_eq!(&seq.verdict, &par.verdict);
        prop_assert_eq!(seq.checked, par.checked);
        prop_assert_eq!(seq.short_circuited, par.short_circuited);
    }

    #[test]
    fn delta_and_oracle_strategies_agree(code in 0u8..64, shape in 0u8..2, n in 3usize..7) {
        // The odometer/delta-evaluation hot path must be byte-identical to
        // the decode-from-index oracle — for a short-circuiting check
        // (soundness) and a full-scan one (strong soundness), sequentially
        // and in parallel.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        assert_opts_parity(&check, &universe, SweepOpts::default(), SweepOpts::oracle())?;
        let two_col = KCol::new(2);
        let strong = StrongCheck { decoder: &decoder, language: &two_col };
        assert_opts_parity(&strong, &universe, SweepOpts::default(), SweepOpts::oracle())?;
    }

    #[test]
    fn mixed_label_sources_agree_across_strategies(code in 0u8..64, n in 3usize..7) {
        // All/Fixed/Unlabeled blocks in one universe: the walker resyncs
        // at block boundaries and the verdict fast path applies only to
        // the All block — every combination must match the oracle.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let universe = mixed_universe(n);
        let check = SoundnessCheck { decoder: &decoder };
        assert_opts_parity(&check, &universe, SweepOpts::default(), SweepOpts::oracle())?;
    }

    #[test]
    fn memoized_and_unmemoized_sweeps_agree(code in 0u8..64, shape in 0u8..2, n in 3usize..7) {
        // Disabling the digit-key memo layers may only change counters,
        // never verdicts.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        let memo_off = SweepOpts { memo: false, ..SweepOpts::default() };
        assert_opts_parity(&check, &universe, SweepOpts::default(), memo_off)?;
    }

    #[test]
    fn nbhd_graph_is_identical_across_strategies_memo_and_threads(
        code in 0u8..64, n in 4usize..7,
    ) {
        // The Lemma 3.1 graph — views in insertion order, adjacency,
        // self-loops, every witness — must not depend on enumeration
        // strategy, memoization, or thread count. The interner is part of
        // the check's state, so each sweep gets a fresh check instance.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let universe = cycle_blocks_universe(n);
        let run = |mode: ExecMode, opts: SweepOpts| {
            let check = HidingCheck::new(&decoder, &universe, 2, bipartite::is_bipartite);
            SweepSession::over(&universe).mode(mode).opts(opts).run(&check)
        };
        let reference = run(ExecMode::Sequential, SweepOpts::oracle());
        let (ref_nbhd, ref_verdict) = &reference.verdict;
        let memo_off = SweepOpts { memo: false, ..SweepOpts::default() };
        for (mode, opts) in [
            (ExecMode::Sequential, SweepOpts::default()),
            (ExecMode::Parallel(parity_threads()), SweepOpts::default()),
            (ExecMode::Parallel(parity_threads()), memo_off),
        ] {
            let other = run(mode, opts);
            assert_nbhd_eq(ref_nbhd, &other.verdict.0)?;
            prop_assert_eq!(ref_verdict, &other.verdict.1);
            prop_assert_eq!(reference.checked, other.checked);
            prop_assert_eq!(reference.universe_size, other.universe_size);
        }
    }

    #[test]
    fn budgeted_delta_resume_chain_matches_oracle(
        code in 0u8..64, shape in 0u8..2, n in 3usize..7, step in 1usize..12,
    ) {
        // A delta-stepping sweep chopped into budget slices and resumed
        // must reproduce the uninterrupted *oracle* sweep — resume tokens
        // are strategy-agnostic.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        let oracle = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .opts(SweepOpts::oracle())
            .run(&check);

        let mode = ExecMode::Parallel(parity_threads());
        let budget = SweepBudget::unlimited().with_max_items(step);
        let session = SweepSession::over(&universe)
            .mode(mode)
            .budget(budget)
            .opts(SweepOpts::default());
        let mut state = session.run_budgeted(&check);
        let mut slices = 1usize;
        while let Some(token) = state.resume.take() {
            state = session.resume(&check, token);
            slices += 1;
            prop_assert!(slices <= universe.len() + 2, "resume chain must terminate");
        }
        let resumed = state.report;
        prop_assert_eq!(&oracle.verdict, &resumed.verdict);
        prop_assert_eq!(oracle.checked, resumed.checked);
        prop_assert_eq!(oracle.universe_size, resumed.universe_size);
        prop_assert_eq!(oracle.short_circuited, resumed.short_circuited);
        prop_assert_eq!(oracle.coverage, resumed.coverage);
        prop_assert!(!resumed.interrupted);
    }

    #[test]
    fn fused_panel_matches_single_member_sweeps(code in 0u8..64, shape in 0u8..2, n in 3usize..7) {
        // A fused panel is observationally the overlay of its members'
        // own sweeps: per member, parallel matches sequential, and the
        // member-level `checked` equals what that check's single-check
        // sequential sweep reports — a member stopped at item `s` counts
        // `s + 1` no matter how far the shared walk carried the others.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let two_col = KCol::new(2);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let soundness = SoundnessCheck { decoder: &decoder };
        let strong = StrongCheck { decoder: &decoder, language: &two_col };
        let members = [
            DynPropertyCheck::new(PropertyTag::Soundness, "soundness", SoundnessCheck {
                decoder: &decoder,
            })
            .with_channel(&decoder),
            DynPropertyCheck::new(PropertyTag::Strong, "strong", StrongCheck {
                decoder: &decoder,
                language: &two_col,
            })
            .with_channel(&decoder),
        ];
        let seq = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .run_panel(&members);
        let par = SweepSession::over(&universe)
            .mode(ExecMode::Parallel(parity_threads()))
            .run_panel(&members);
        prop_assert_eq!(seq.evidence.checked, par.evidence.checked);
        prop_assert_eq!(seq.evidence.short_circuited, par.evidence.short_circuited);
        for (a, b) in seq.members.iter().zip(&par.members) {
            prop_assert_eq!(a.checked, b.checked);
            prop_assert_eq!(a.short_circuited, b.short_circuited);
            prop_assert_eq!(a.verdict.passed, b.verdict.passed);
            prop_assert_eq!(&a.verdict.detail, &b.verdict.detail);
        }

        let solo = SweepSession::over(&universe).mode(ExecMode::Sequential);
        let solo_soundness = solo.run(&soundness);
        let solo_strong = solo.run(&strong);
        prop_assert_eq!(seq.members[0].checked, solo_soundness.checked);
        prop_assert_eq!(seq.members[0].short_circuited, solo_soundness.short_circuited);
        prop_assert_eq!(
            seq.members[0].verdict.get::<Result<usize, SoundnessViolation>>().unwrap(),
            &solo_soundness.verdict
        );
        prop_assert_eq!(seq.members[1].checked, solo_strong.checked);
        prop_assert_eq!(seq.members[1].short_circuited, solo_strong.short_circuited);
        prop_assert_eq!(
            seq.members[1].verdict.get::<Result<usize, StrongViolation>>().unwrap(),
            &solo_strong.verdict
        );
        // The shared walk reaches exactly as far as the laggard member.
        prop_assert_eq!(
            seq.evidence.checked,
            solo_soundness.checked.max(solo_strong.checked)
        );
    }

    #[test]
    fn interrupted_shard_resume_matches_uninterrupted(
        code in 0u8..64, shape in 0u8..2, n in 3usize..6, step in 1usize..9, shards in 2usize..5,
    ) {
        // Shard the universe, run every shard as a budget-sliced resume
        // chain (each slice capped at `step` items), and merge: the panel
        // report must match an uninterrupted single-session run member for
        // member. Interruption points and shard boundaries are both
        // invisible in the merged output.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let two_col = KCol::new(2);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let members = [
            DynPropertyCheck::new(PropertyTag::Soundness, "soundness", SoundnessCheck {
                decoder: &decoder,
            })
            .with_channel(&decoder),
            DynPropertyCheck::new(PropertyTag::Strong, "strong", StrongCheck {
                decoder: &decoder,
                language: &two_col,
            })
            .with_channel(&decoder),
        ];
        let full = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .run_panel(&members);

        let budget = SweepBudget::unlimited().with_max_items(step);
        let mut fragments = Vec::new();
        for spec in ShardSpec::partition(shards) {
            let session = SweepSession::over(&universe)
                .mode(ExecMode::Sequential)
                .budget(budget)
                .shard(spec);
            let mut frag = session.run_panel_fragment(&members);
            let mut slices = 1usize;
            while !frag.is_complete() {
                frag = session.resume_panel_fragment(&members, frag.into_resume_token());
                slices += 1;
                prop_assert!(slices <= universe.len() + 2, "resume chain must terminate");
            }
            fragments.push(frag);
        }
        let merged =
            merge_panel_fragments(&members, &universe, ExecMode::Sequential, fragments, None)
                .expect("complete shard fragments tile the universe");

        prop_assert_eq!(full.evidence.checked, merged.evidence.checked);
        prop_assert_eq!(full.evidence.short_circuited, merged.evidence.short_circuited);
        for (a, b) in full.members.iter().zip(&merged.members) {
            prop_assert_eq!(a.checked, b.checked);
            prop_assert_eq!(a.short_circuited, b.short_circuited);
            prop_assert_eq!(a.verdict.passed, b.verdict.passed);
            prop_assert_eq!(&a.verdict.detail, &b.verdict.detail);
        }
    }
}

// ---------------------------------------------------------------------------
// Symmetry-quotient strategy: orbit enumeration with multiplicity-weighted
// verdicts must be observationally identical to the full walk.
// ---------------------------------------------------------------------------

use hiding_lcp_core::verify::SymmetrySpec;

/// A cycle instance under the rotation-symmetric port assignment, where
/// the quotient actually bites (canonical ports leave only the identity).
fn symmetric_cycle(n: usize) -> Instance {
    let g = hiding_lcp_graph::generators::cycle(n);
    let ports = hiding_lcp_graph::ports::cycle_symmetric(&g);
    Instance::new(g, ports, hiding_lcp_graph::IdAssignment::canonical(n))
        .expect("symmetric cycle ports are valid")
}

/// Records every inspected item's orbit multiplicity. Declares port
/// automorphisms plus (optionally) a full-alphabet certificate class, so a
/// quotient sweep visits exactly one representative per orbit.
struct MultiplicityRecorder {
    classes: Option<Vec<usize>>,
}

impl PropertyCheck for MultiplicityRecorder {
    type Partial = u64;
    type Verdict = Vec<(usize, u64)>;

    fn inspect(&self, _item: &UniverseItem<'_>, ctx: &ItemCtx<'_>) -> Option<u64> {
        Some(ctx.multiplicity())
    }

    fn symmetry_class(&self, _alphabet: &[Certificate]) -> Option<SymmetrySpec> {
        Some(SymmetrySpec {
            automorphisms: true,
            alphabet_classes: self.classes.clone(),
        })
    }

    fn reduce(
        &self,
        _universe: &Universe,
        partials: Vec<(usize, u64)>,
        _outcome: &SweepOutcome,
    ) -> Self::Verdict {
        partials
    }
}

/// All permutations of `0..k`.
fn perms(k: usize) -> Vec<Vec<usize>> {
    fn rec(pool: Vec<usize>) -> Vec<Vec<usize>> {
        if pool.is_empty() {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &x) in pool.iter().enumerate() {
            let mut rest = pool.clone();
            rest.remove(i);
            for mut tail in rec(rest) {
                tail.insert(0, x);
                out.push(tail);
            }
        }
        out
    }
    rec((0..k).collect())
}

/// A mixed-source universe whose `All` block carries symmetric ports, so
/// the quotient engages on exactly one of the three blocks.
fn mixed_symmetric_universe(n: usize) -> Universe {
    let path = Instance::canonical(hiding_lcp_graph::generators::path(n));
    let fixed = vec![
        Labeling::uniform(n, Certificate::from_byte(1)),
        Labeling::uniform(n, Certificate::from_byte(0)),
    ];
    let blocks = vec![
        Block::new(symmetric_cycle(n), LabelSource::All { alphabet: bits() }),
        Block::new(path.clone(), LabelSource::Fixed(fixed)),
        Block::new(path, LabelSource::Unlabeled),
    ];
    Universe::new(blocks, Coverage::Sampled).expect("small universe fits")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quotient_orbits_partition_the_universe(n in 3usize..7, k in 2usize..4) {
        // The representatives a quotient sweep visits must partition the
        // full labeling space: orbit multiplicities sum to |Sigma|^n, every
        // representative is its orbit's flat-index minimum, and no two
        // representatives share an orbit. The group is recomputed here from
        // first principles (port automorphisms x alphabet permutations).
        let g = hiding_lcp_graph::generators::cycle(n);
        let ports = hiding_lcp_graph::ports::cycle_symmetric(&g);
        let auts = hiding_lcp_graph::algo::automorphism::port_automorphisms(&g, &ports, 1 << 12)
            .expect("cycle group is tiny");
        let instance = Instance::new(g, ports, hiding_lcp_graph::IdAssignment::canonical(n))
            .expect("symmetric cycle ports are valid");
        let alphabet: Vec<Certificate> = (0..k as u8).map(Certificate::from_byte).collect();
        let universe = Universe::all_labelings_of(instance, alphabet, Coverage::Exhaustive)
            .expect("small universe fits");
        let check = MultiplicityRecorder { classes: Some(vec![0; k]) };
        let report = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .opts(SweepOpts::quotient())
            .run(&check);
        prop_assert_eq!(report.checked, universe.len());
        let reps = report.verdict;

        let total: u64 = reps.iter().map(|&(_, m)| m).sum();
        prop_assert_eq!(total, (k as u64).pow(n as u32), "multiplicities sum to |Sigma|^n");
        prop_assert!(reps.len() < universe.len(), "quotient visits strictly fewer items");

        let sigmas = perms(k);
        let digits_of = |mut idx: usize| -> Vec<usize> {
            (0..n).map(|_| { let d = idx % k; idx /= k; d }).collect()
        };
        let index_of = |digits: &[usize]| -> usize {
            digits.iter().rev().fold(0usize, |acc, &d| acc * k + d)
        };
        let mut covered = vec![false; universe.len()];
        for &(rep, mult) in &reps {
            let d = digits_of(rep);
            let mut orbit = std::collections::BTreeSet::new();
            for pi in &auts {
                let mut pinv = vec![0usize; n];
                for (v, &img) in pi.iter().enumerate() {
                    pinv[img] = v;
                }
                for sigma in &sigmas {
                    let image: Vec<usize> = (0..n).map(|v| sigma[d[pinv[v]]]).collect();
                    orbit.insert(index_of(&image));
                }
            }
            prop_assert_eq!(*orbit.iter().next().expect("orbit nonempty"), rep,
                "representative is the orbit minimum");
            prop_assert_eq!(orbit.len() as u64, mult, "multiplicity equals the orbit size");
            for &member in &orbit {
                prop_assert!(!covered[member], "two representatives share an orbit");
                covered[member] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "orbits cover the universe");
    }

    #[test]
    fn quotient_delta_and_oracle_strategies_agree(code in 0u8..64, n in 3usize..7) {
        // Quotient vs delta-stepping vs decode oracle, sequential and
        // parallel: same verdict, same witness, same checked count — for a
        // short-circuiting check (soundness) and a full-scan one (strong).
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let universe = Universe::all_labelings_of(symmetric_cycle(n), bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        assert_opts_parity(&check, &universe, SweepOpts::default(), SweepOpts::quotient())?;
        assert_opts_parity(&check, &universe, SweepOpts::oracle(), SweepOpts::quotient())?;
        let two_col = KCol::new(2);
        let strong = StrongCheck { decoder: &decoder, language: &two_col };
        assert_opts_parity(&strong, &universe, SweepOpts::default(), SweepOpts::quotient())?;
        assert_opts_parity(&strong, &universe, SweepOpts::oracle(), SweepOpts::quotient())?;
    }

    #[test]
    fn quotient_on_mixed_label_sources_agrees(code in 0u8..64, n in 3usize..7) {
        // All/Fixed/Unlabeled blocks in one universe: the quotient engages
        // on the All block only; Fixed and Unlabeled items pass through
        // with multiplicity one.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let universe = mixed_symmetric_universe(n);
        let check = SoundnessCheck { decoder: &decoder };
        assert_opts_parity(&check, &universe, SweepOpts::default(), SweepOpts::quotient())?;
    }

    #[test]
    fn quotient_nbhd_graph_preserves_views_edges_and_loops(code in 0u8..64, n in 4usize..7) {
        // The neighborhood scan declares automorphism symmetry only (no
        // alphabet classes); a quotient sweep must reproduce the exact view
        // list (insertion order included), adjacency and self-loops. Only
        // the retained-instance list may shrink — witnesses are therefore
        // not compared.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let blocks = (3..=n)
            .map(|m| Block::new(symmetric_cycle(m), LabelSource::All { alphabet: bits() }))
            .collect();
        let universe = Universe::new(blocks, Coverage::Sampled).expect("small universe fits");
        let run = |opts: SweepOpts| {
            let check = HidingCheck::new(&decoder, &universe, 2, bipartite::is_bipartite);
            SweepSession::over(&universe)
                .mode(ExecMode::Sequential)
                .opts(opts)
                .run(&check)
        };
        let full = run(SweepOpts::default());
        let quot = run(SweepOpts::quotient());
        let (full_nbhd, full_verdict) = &full.verdict;
        let (quot_nbhd, quot_verdict) = &quot.verdict;
        prop_assert_eq!(full_verdict, quot_verdict);
        prop_assert_eq!(full_nbhd.view_count(), quot_nbhd.view_count());
        prop_assert_eq!(full_nbhd.views(), quot_nbhd.views());
        prop_assert_eq!(full_nbhd.edge_count(), quot_nbhd.edge_count());
        prop_assert_eq!(full_nbhd.self_loop_views(), quot_nbhd.self_loop_views());
        for i in 0..full_nbhd.view_count() {
            let a: Vec<usize> = full_nbhd.neighbors(i).collect();
            let b: Vec<usize> = quot_nbhd.neighbors(i).collect();
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(full.checked, quot.checked);
    }

    #[test]
    fn quotient_panel_matches_delta_panel(code in 0u8..64, n in 3usize..7) {
        // A fused panel under the quotient strategy filters canonicity per
        // member; every member must report exactly what it reports under
        // the full walk, in both execution modes.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let two_col = KCol::new(2);
        let universe = Universe::all_labelings_of(symmetric_cycle(n), bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let members = [
            DynPropertyCheck::new(PropertyTag::Soundness, "soundness", SoundnessCheck {
                decoder: &decoder,
            })
            .with_channel(&decoder),
            DynPropertyCheck::new(PropertyTag::Strong, "strong", StrongCheck {
                decoder: &decoder,
                language: &two_col,
            })
            .with_channel(&decoder),
        ];
        let reference = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .opts(SweepOpts::default())
            .run_panel(&members);
        for mode in [ExecMode::Sequential, ExecMode::Parallel(parity_threads())] {
            let quotient = SweepSession::over(&universe)
                .mode(mode)
                .opts(SweepOpts::quotient())
                .run_panel(&members);
            prop_assert_eq!(reference.evidence.checked, quotient.evidence.checked);
            prop_assert_eq!(
                reference.evidence.short_circuited,
                quotient.evidence.short_circuited
            );
            for (a, b) in reference.members.iter().zip(&quotient.members) {
                prop_assert_eq!(a.checked, b.checked);
                prop_assert_eq!(a.short_circuited, b.short_circuited);
                prop_assert_eq!(
                    a.verdict.get::<Result<usize, SoundnessViolation>>(),
                    b.verdict.get::<Result<usize, SoundnessViolation>>()
                );
                prop_assert_eq!(
                    a.verdict.get::<Result<usize, StrongViolation>>(),
                    b.verdict.get::<Result<usize, StrongViolation>>()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-shard budget semantics: each shard's calls draw on their own
// allowance (documented on `SweepBudget`).
// ---------------------------------------------------------------------------

/// Counts visited items and never short-circuits — the per-shard budget
/// test needs a walk whose length is exactly the budget's allowance.
struct CountItems;

impl PropertyCheck for CountItems {
    type Partial = usize;
    type Verdict = usize;

    fn inspect(&self, _item: &UniverseItem<'_>, _ctx: &ItemCtx<'_>) -> Option<usize> {
        Some(1)
    }

    fn reduce(
        &self,
        _universe: &Universe,
        partials: Vec<(usize, usize)>,
        _outcome: &SweepOutcome,
    ) -> usize {
        partials.len()
    }
}

#[test]
fn budget_max_items_is_per_shard() {
    // With `max_items = m` and `N` shards, one budgeted pass over every
    // shard visits `N * m` items — there is no cross-shard accounting —
    // and a shard's resume chain stays strictly inside `[lo, hi)` until
    // it completes the shard's full span.
    let universe = Universe::all_labelings_of(cycle_or_path(0, 4), bits(), Coverage::Exhaustive)
        .expect("small universe fits");
    let m = 3usize;
    let shards = 2usize;
    let budget = SweepBudget::unlimited().with_max_items(m);
    let mut first_pass_total = 0usize;
    for spec in ShardSpec::partition(shards) {
        let session = SweepSession::over(&universe)
            .mode(ExecMode::Sequential)
            .budget(budget)
            .shard(spec);
        let (lo, hi) = session.range();
        assert!(hi - lo > m, "shard span must exceed the allowance");
        let mut state = session.run_budgeted(&CountItems);
        // `checked` is the walk frontier (it includes the shard's skipped
        // prefix `[0, lo)`); the CountItems verdict counts actual visits.
        assert_eq!(
            state.report.verdict, m,
            "first slice visits exactly m items"
        );
        assert_eq!(
            state.report.checked,
            lo + m,
            "frontier advances by m from lo"
        );
        first_pass_total += state.report.verdict;
        let mut slices = 1usize;
        while let Some(token) = state.resume.take() {
            assert!(
                token.next_index > lo && token.next_index < hi,
                "resume frontier stays inside the shard range"
            );
            state = session.resume(&CountItems, token);
            slices += 1;
            assert!(slices <= universe.len() + 2, "resume chain must terminate");
        }
        assert_eq!(
            state.report.verdict,
            hi - lo,
            "the drained chain covers the shard span exactly"
        );
        assert_eq!(
            state.report.checked, hi,
            "the frontier ends at the shard's hi"
        );
    }
    assert_eq!(first_pass_total, shards * m, "allowances are independent");
}
