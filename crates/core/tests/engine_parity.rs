//! Property-based parity between the verification engine's parallel
//! executor and its sequential fallback.
//!
//! The executor's contract (see `verify::executor` module docs) is that
//! parallel and sequential sweeps are observationally identical: same
//! verdict, same witness (the lowest-indexed violation), same
//! checked-count, same short-circuit flag. This suite hammers that
//! contract with random decoders over random instance universes.
//! `cache_hits`/`cache_misses` are deliberately *not* compared — a
//! parallel short-circuiting sweep may inspect items beyond the final
//! witness, so its cache traffic can legitimately differ.

use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::Certificate;
use hiding_lcp_core::language::KCol;
use hiding_lcp_core::lower::PortObliviousCycleDecoder;
use hiding_lcp_core::properties::soundness::SoundnessCheck;
use hiding_lcp_core::properties::strong::StrongCheck;
use hiding_lcp_core::verify::{sweep_with, Coverage, ExecMode, PropertyCheck, Universe};
use proptest::prelude::*;

fn bits() -> Vec<Certificate> {
    vec![Certificate::from_byte(0), Certificate::from_byte(1)]
}

fn cycle_or_path(shape: u8, n: usize) -> Instance {
    if shape.is_multiple_of(2) {
        Instance::canonical(hiding_lcp_graph::generators::cycle(n))
    } else {
        Instance::canonical(hiding_lcp_graph::generators::path(n))
    }
}

/// Runs `check` both ways and asserts the reports agree observationally.
fn assert_parity<C>(check: &C, universe: &Universe) -> Result<(), TestCaseError>
where
    C: PropertyCheck,
    C::Verdict: PartialEq + std::fmt::Debug,
{
    let seq = sweep_with(check, universe, ExecMode::Sequential);
    let par = sweep_with(check, universe, ExecMode::Parallel(3));
    prop_assert_eq!(&seq.verdict, &par.verdict);
    prop_assert_eq!(seq.checked, par.checked);
    prop_assert_eq!(seq.universe_size, par.universe_size);
    prop_assert_eq!(seq.short_circuited, par.short_circuited);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn soundness_sweeps_agree(code in 0u8..64, shape in 0u8..2, n in 3usize..7) {
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        assert_parity(&check, &universe)?;
    }

    #[test]
    fn strong_sweeps_agree(code in 0u8..64, shape in 0u8..2, n in 3usize..7) {
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let two_col = KCol::new(2);
        let instance = cycle_or_path(shape, n);
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = StrongCheck { decoder: &decoder, language: &two_col };
        assert_parity(&check, &universe)?;
    }

    #[test]
    fn multi_block_sweeps_agree(code in 0u8..64, n in 3usize..6) {
        // Universes spanning several blocks exercise the chunked
        // work-stealing across block boundaries.
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let blocks = (3..=n + 1)
            .map(|m| {
                hiding_lcp_core::verify::Block::new(
                    Instance::canonical(hiding_lcp_graph::generators::cycle(m)),
                    hiding_lcp_core::verify::LabelSource::All { alphabet: bits() },
                )
            })
            .collect();
        let universe = Universe::new(blocks, Coverage::Sampled).expect("small universe fits");
        let check = SoundnessCheck { decoder: &decoder };
        assert_parity(&check, &universe)?;
    }
}
