//! Canonical forms and isomorphism testing for small graphs.
//!
//! The canonical key is the lexicographically smallest row-wise
//! lower-triangular adjacency encoding over all *degree-respecting*
//! relabelings: positions are pre-assigned degrees in ascending order, and
//! nodes may only be placed at positions of their own degree. This is a
//! complete isomorphism invariant — isomorphic graphs have equal keys,
//! non-isomorphic graphs differ — because an isomorphism preserves degrees
//! and the set of degree-respecting placements is closed under composition
//! with isomorphisms.
//!
//! The search backtracks over positions with incremental lexicographic
//! pruning, which keeps even vertex-transitive graphs such as the Petersen
//! graph tractable. Intended for the exhaustive small-graph enumeration of
//! Lemma 3.1 and for deduplicating views; not for large graphs.

use crate::graph::Graph;

/// An isomorphism-invariant canonical key for `g`.
///
/// The first entry is the node count, followed by the sorted degree
/// sequence, followed by the minimal adjacency encoding packed into `u64`
/// words.
///
/// # Example
///
/// ```
/// use hiding_lcp_graph::{canon, Graph};
/// let a = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let b = Graph::from_edges(3, &[(0, 2), (2, 1)]).unwrap();
/// assert_eq!(canon::canonical_key(&a), canon::canonical_key(&b));
/// ```
pub fn canonical_key(g: &Graph) -> Vec<u64> {
    let n = g.node_count();
    let mut key = vec![n as u64];
    let mut degrees: Vec<u64> = g.nodes().map(|v| g.degree(v) as u64).collect();
    degrees.sort_unstable();
    key.extend_from_slice(&degrees);
    key.extend(pack_bits(&minimal_bits(g)));
    key
}

/// Whether `a` and `b` are isomorphic.
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    #[cfg(conformance_mutants)]
    if crate::mutants::active("iso_degree_sequence_only") {
        let degree_sequence = |g: &Graph| {
            let mut degrees: Vec<usize> = (0..g.node_count()).map(|v| g.degree(v)).collect();
            degrees.sort_unstable();
            degrees
        };
        return a.node_count() == b.node_count() && degree_sequence(a) == degree_sequence(b);
    }
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && canonical_key(a) == canonical_key(b)
}

fn pack_bits(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; bits.len().div_ceil(64)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

/// State for the branch-and-bound canonical placement search.
///
/// Invariant maintained throughout: `current[0..eq_upto] ==
/// best[0..eq_upto]`, and if `eq_upto < current.len()` then
/// `current[eq_upto] < best[eq_upto]` (the current partial encoding is
/// strictly smaller than `best`, so its completions cannot be pruned).
struct Search<'a> {
    g: &'a Graph,
    /// Degree required at each position (ascending).
    pos_degree: Vec<usize>,
    /// Current partial placement: `placement[p]` = node at position `p`.
    placement: Vec<usize>,
    used: Vec<bool>,
    /// Current partial encoding (row-wise lower triangle).
    current: Vec<bool>,
    best: Option<Vec<bool>>,
    /// Length of the common prefix of `current` and `best`.
    eq_upto: usize,
}

/// Minimal lower-triangular adjacency bits over degree-respecting
/// placements.
fn minimal_bits(g: &Graph) -> Vec<bool> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let mut search = Search {
        g,
        pos_degree: degrees,
        placement: Vec::with_capacity(n),
        used: vec![false; n],
        current: Vec::with_capacity(n * (n - 1) / 2),
        best: None,
        eq_upto: 0,
    };
    search.recurse();
    search.best.expect("at least one placement exists")
}

impl Search<'_> {
    fn recurse(&mut self) {
        let n = self.g.node_count();
        let pos = self.placement.len();
        if pos == n {
            let is_strictly_smaller = self.eq_upto < self.current.len();
            if self.best.is_none() || is_strictly_smaller {
                self.best = Some(self.current.clone());
            }
            self.eq_upto = self.current.len();
            return;
        }
        for v in self.g.nodes() {
            if self.used[v] || self.g.degree(v) != self.pos_degree[pos] {
                continue;
            }
            // Row bits: adjacency of v to already-placed nodes.
            let row_start = self.current.len();
            for q in 0..pos {
                self.current.push(self.g.has_edge(v, self.placement[q]));
            }
            let mut prune = false;
            if let Some(best) = &self.best {
                if self.eq_upto == row_start {
                    // Prefix equal so far: compare the new row.
                    let mut i = row_start;
                    while i < self.current.len() && self.current[i] == best[i] {
                        i += 1;
                    }
                    if i == self.current.len() {
                        self.eq_upto = i; // still tied
                    } else if self.current[i] {
                        prune = true; // current > best
                    } else {
                        self.eq_upto = i; // current < best: explore freely
                    }
                }
                // eq_upto < row_start: already strictly smaller; no prune.
            }
            if !prune {
                self.used[v] = true;
                self.placement.push(v);
                self.recurse();
                self.placement.pop();
                self.used[v] = false;
            }
            self.current.truncate(row_start);
            self.eq_upto = self.eq_upto.min(row_start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn relabeled_cycles_are_isomorphic() {
        let c5 = generators::cycle(5);
        let shifted = Graph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (4, 0), (0, 1)]).unwrap();
        let scrambled = Graph::from_edges(5, &[(0, 2), (2, 4), (4, 1), (1, 3), (3, 0)]).unwrap();
        assert!(are_isomorphic(&c5, &shifted));
        assert!(are_isomorphic(&c5, &scrambled));
    }

    #[test]
    fn distinguishes_path_from_star() {
        let p4 = generators::path(4);
        let s3 = generators::star(3);
        assert_eq!(p4.edge_count(), s3.edge_count());
        assert!(!are_isomorphic(&p4, &s3));
    }

    #[test]
    fn distinguishes_same_degree_sequence() {
        // C6 and two disjoint triangles are both 2-regular on 6 nodes.
        let c6 = generators::cycle(6);
        let two_triangles = generators::cycle(3).disjoint_union(&generators::cycle(3));
        assert!(!are_isomorphic(&c6, &two_triangles));
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(canonical_key(&Graph::new(0)), vec![0]);
        assert!(are_isomorphic(&Graph::new(1), &Graph::new(1)));
        assert!(!are_isomorphic(&Graph::new(1), &Graph::new(2)));
    }

    #[test]
    fn key_is_invariant_under_relabeling() {
        let g = generators::petersen();
        let n = g.node_count();
        let edges: Vec<(usize, usize)> = g.edges().map(|(u, v)| (n - 1 - u, n - 1 - v)).collect();
        let h = Graph::from_edges(n, &edges).unwrap();
        assert_eq!(canonical_key(&g), canonical_key(&h));
    }

    #[test]
    fn petersen_vs_k5_complement_structure() {
        // Petersen is the Kneser graph K(5,2); it is 3-regular like the
        // 3-dimensional hypercube but not isomorphic to it (and has more
        // nodes than Q3 has... use a different 3-regular graph on 10
        // nodes: the 5-prism C5 x K2).
        let petersen = generators::petersen();
        let mut prism = Graph::new(10);
        for v in 0..5 {
            prism.add_edge(v, (v + 1) % 5).unwrap();
            prism.add_edge(v + 5, (v + 1) % 5 + 5).unwrap();
            prism.add_edge(v, v + 5).unwrap();
        }
        assert_eq!(petersen.edge_count(), prism.edge_count());
        assert!(!are_isomorphic(&petersen, &prism));
    }
}
