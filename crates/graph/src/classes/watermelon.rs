//! Watermelon graphs (paper, Section 7.2).
//!
//! A watermelon graph is defined by two endpoints `v₁, v₂` and a collection
//! of internally-disjoint paths of length ≥ 2 joining them. Theorem 1.4
//! gives a strong and hiding one-round LCP with `O(log n)` certificates on
//! this class; a watermelon is bipartite iff all its path lengths share a
//! parity.

use crate::graph::Graph;

/// A watermelon decomposition: the two endpoints plus each path listed as
/// the node sequence `v₁, internal…, v₂`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watermelon {
    /// The endpoints `(v₁, v₂)`.
    pub endpoints: (usize, usize),
    /// The paths, each starting at `v₁` and ending at `v₂`, ordered by
    /// their first internal node.
    pub paths: Vec<Vec<usize>>,
}

impl Watermelon {
    /// The length (edge count) of each path.
    pub fn path_lengths(&self) -> Vec<usize> {
        self.paths.iter().map(|p| p.len() - 1).collect()
    }

    /// A watermelon is bipartite iff all path lengths have equal parity.
    pub fn is_bipartite(&self) -> bool {
        let lens = self.path_lengths();
        lens.windows(2).all(|w| w[0] % 2 == w[1] % 2)
    }
}

/// Attempts to decompose `g` as a watermelon with the given endpoints.
///
/// Requirements checked: `v₁ ≠ v₂`, the endpoints are non-adjacent (paths
/// have length ≥ 2), every other node has degree exactly 2, and following
/// each port of `v₁` traces a path of internal degree-2 nodes that ends at
/// `v₂`, covering the whole graph.
pub fn decompose_with_endpoints(g: &Graph, v1: usize, v2: usize) -> Option<Watermelon> {
    let n = g.node_count();
    if v1 >= n || v2 >= n || v1 == v2 || g.has_edge(v1, v2) {
        return None;
    }
    if g.degree(v1) != g.degree(v2) || g.degree(v1) == 0 {
        return None;
    }
    for v in g.nodes() {
        if v != v1 && v != v2 && g.degree(v) != 2 {
            return None;
        }
    }
    let mut used = vec![false; n];
    used[v1] = true;
    used[v2] = true;
    let mut paths = Vec::new();
    for &first in g.neighbors(v1) {
        let mut path = vec![v1];
        let mut prev = v1;
        let mut cur = first;
        loop {
            if cur == v2 {
                path.push(v2);
                break;
            }
            if cur == v1 || used[cur] {
                return None; // path loops back or reuses a node
            }
            used[cur] = true;
            path.push(cur);
            let next = *g
                .neighbors(cur)
                .iter()
                .find(|&&w| w != prev)
                .expect("internal nodes have degree 2");
            prev = cur;
            cur = next;
        }
        if path.len() < 3 {
            return None; // length < 2
        }
        paths.push(path);
    }
    // Every node must be covered (graph connected through the paths).
    if used.iter().any(|&u| !u) {
        return None;
    }
    Some(Watermelon {
        endpoints: (v1, v2),
        paths,
    })
}

/// Attempts to recognize `g` as a watermelon graph, trying all endpoint
/// choices consistent with the degree sequence.
///
/// Cycles are watermelons for many endpoint pairs; the smallest valid pair
/// is chosen.
pub fn decompose(g: &Graph) -> Option<Watermelon> {
    let non_deg2: Vec<usize> = g.nodes().filter(|&v| g.degree(v) != 2).collect();
    match non_deg2.len() {
        0 => {
            // 2-regular: a cycle (if connected). Any two non-adjacent nodes
            // work as endpoints; pick 0 and the first valid partner.
            (1..g.node_count())
                .filter(|&v| !g.has_edge(0, v))
                .find_map(|v| decompose_with_endpoints(g, 0, v))
        }
        2 => decompose_with_endpoints(g, non_deg2[0], non_deg2[1]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bipartite;
    use crate::generators;

    #[test]
    fn generated_watermelons_decompose() {
        for lens in [vec![2, 2], vec![2, 3, 4], vec![5, 5, 5, 5]] {
            let g = generators::watermelon(&lens);
            let w = decompose(&g).expect("generated watermelon decomposes");
            assert_eq!(w.endpoints, (0, 1));
            let mut got = w.path_lengths();
            got.sort_unstable();
            let mut want = lens.clone();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn parity_criterion_matches_bipartiteness() {
        for lens in [
            vec![2, 2],
            vec![2, 3],
            vec![3, 3, 3],
            vec![2, 4, 6],
            vec![3, 4],
            vec![2, 2, 2, 3],
        ] {
            let g = generators::watermelon(&lens);
            let w = decompose(&g).expect("decomposes");
            assert_eq!(
                w.is_bipartite(),
                bipartite::is_bipartite(&g),
                "parity criterion failed for {lens:?}"
            );
        }
    }

    #[test]
    fn cycles_are_watermelons() {
        let c6 = generators::cycle(6);
        let w = decompose(&c6).expect("a cycle is a two-path watermelon");
        assert_eq!(w.paths.len(), 2);
        assert_eq!(w.path_lengths().iter().sum::<usize>(), 6);
    }

    #[test]
    fn paths_are_single_slice_watermelons() {
        // The definition allows k = 1: a path of length >= 2 is a
        // watermelon whose endpoints are its two leaves.
        let w = decompose(&generators::path(5)).expect("P5 is a 1-path watermelon");
        assert_eq!(w.paths.len(), 1);
        assert_eq!(w.path_lengths(), vec![4]);
        // P2 has adjacent endpoints (length 1 < 2): not a watermelon.
        assert!(decompose(&generators::path(2)).is_none());
    }

    #[test]
    fn non_watermelons_are_rejected() {
        assert!(decompose(&generators::complete(4)).is_none());
        assert!(decompose(&generators::star(3)).is_none());
        assert!(decompose(&generators::grid(3, 3)).is_none());
        // Two disjoint cycles: 2-regular but disconnected.
        let two = generators::cycle(4).disjoint_union(&generators::cycle(4));
        assert!(decompose(&two).is_none());
    }

    #[test]
    fn triangle_is_not_a_watermelon() {
        // C3: every pair of nodes is adjacent, so no endpoint pair works.
        assert!(decompose(&generators::cycle(3)).is_none());
    }

    #[test]
    fn explicit_endpoints_validation() {
        let g = generators::watermelon(&[2, 4]);
        assert!(decompose_with_endpoints(&g, 0, 1).is_some());
        // Wrong endpoints: internal nodes have degree 2 as well (cycle), so
        // some pairs still decompose, but adjacent pairs never do.
        let adjacent_pair = g.neighbors(0)[0];
        assert!(decompose_with_endpoints(&g, 0, adjacent_pair).is_none());
        assert!(decompose_with_endpoints(&g, 0, 0).is_none());
    }
}
