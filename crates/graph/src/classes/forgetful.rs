//! The *r-forgetful* property (paper, Section 1.3).
//!
//! A graph is r-forgetful if, whenever a walk arrives at `v` coming from
//! its neighbor `u`, it can "escape" along a path `P = (v₀ = v, …, v_r)`
//! that moves monotonically away from everything `u` can see.
//!
//! # Interpretation note
//!
//! The paper's literal condition — for every `w ∈ N^r(u)` the distance
//! `dist(v_i, w)` is monotonically increasing in `i` — cannot hold for
//! `r ≥ 2`: the path's own second node `v₁` lies in `N^r(u)` (it is at
//! distance ≤ 2 from `u`) and `dist(v₁, v₁) = 0 < dist(v₀, v₁) = 1`. We
//! therefore implement the evidently intended reading: distances to every
//! `w ∈ N^r(u)` **not on the path itself** increase strictly along `P`,
//! and the path avoids `u`. Under this reading sufficiently large tori and
//! long cycles are r-forgetful, Lemma 2.1 (`diam(G) ≥ 2r + 1`) holds on
//! every instance we test, and the escape paths are exactly what Lemma 5.4
//! consumes. Finite grids fail at their corners (the escape neighbor of a
//! corner approaches the diagonal node of `N^r(u)`) and finite trees fail
//! at their leaves — the paper's "grids and trees" claim evidently refers
//! to the unbounded versions. See `DESIGN.md` for the full discussion.

use crate::algo::bfs;
use crate::graph::Graph;

/// An escape path of length `r` for the arrival `u → v`: a simple path
/// `P = (v₀ = v, …, v_r)` avoiding `u` such that the distance from every
/// `w ∈ N^r(u)` not on `P` strictly increases along `P`. Returns `None` if
/// no such path exists.
///
/// `apsp` must be the all-pairs distance matrix of `g`
/// (see [`bfs::all_pairs`]).
///
/// # Panics
///
/// Panics if `u` and `v` are not adjacent or `apsp` has the wrong shape.
pub fn escape_path(
    g: &Graph,
    apsp: &[Vec<usize>],
    v: usize,
    u: usize,
    r: usize,
) -> Option<Vec<usize>> {
    assert!(g.has_edge(u, v), "{u} and {v} must be adjacent");
    assert_eq!(apsp.len(), g.node_count(), "apsp shape mismatch");
    let ball_u = bfs::ball(g, u, r);
    let mut path = vec![v];
    if extend_escape(g, apsp, u, &ball_u, r, &mut path) {
        Some(path)
    } else {
        None
    }
}

/// DFS extension of a candidate escape path. Because the monotonicity
/// exemption covers nodes anywhere on the *final* path, candidate paths are
/// fully validated only once complete; the DFS merely enumerates simple
/// paths avoiding `u`.
fn extend_escape(
    g: &Graph,
    apsp: &[Vec<usize>],
    u: usize,
    ball_u: &[usize],
    r: usize,
    path: &mut Vec<usize>,
) -> bool {
    if path.len() == r + 1 {
        return validate_escape(apsp, ball_u, path);
    }
    let tail = *path.last().expect("path starts non-empty");
    for &next in g.neighbors(tail) {
        if next == u || path.contains(&next) {
            continue;
        }
        path.push(next);
        if extend_escape(g, apsp, u, ball_u, r, path) {
            return true;
        }
        path.pop();
    }
    false
}

/// Checks strict distance increase along `path` for every `w ∈ ball_u` not
/// on `path`.
fn validate_escape(apsp: &[Vec<usize>], ball_u: &[usize], path: &[usize]) -> bool {
    for &w in ball_u {
        if path.contains(&w) {
            continue;
        }
        for step in path.windows(2) {
            let before = apsp[step[0]][w];
            let after = apsp[step[1]][w];
            if after <= before {
                return false;
            }
        }
    }
    true
}

/// Whether `g` is r-forgetful: every ordered adjacent pair `(u, v)` admits
/// an [`escape_path`].
///
/// The empty graph and edgeless graphs are vacuously r-forgetful.
pub fn is_r_forgetful(g: &Graph, r: usize) -> bool {
    let apsp = bfs::all_pairs(g);
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            if escape_path(g, &apsp, v, u, r).is_none() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bfs::diameter;
    use crate::generators;

    #[test]
    fn long_even_cycles_are_forgetful() {
        assert!(is_r_forgetful(&generators::cycle(6), 1));
        assert!(is_r_forgetful(&generators::cycle(10), 2));
        assert!(is_r_forgetful(&generators::cycle(14), 3));
    }

    #[test]
    fn short_cycles_are_not_forgetful() {
        assert!(!is_r_forgetful(&generators::cycle(4), 1));
        assert!(!is_r_forgetful(&generators::cycle(5), 1));
        assert!(!is_r_forgetful(&generators::cycle(8), 2));
    }

    #[test]
    fn tori_are_forgetful() {
        assert!(is_r_forgetful(&generators::torus(6, 6), 1));
        assert!(is_r_forgetful(&generators::torus(7, 7), 1));
        assert!(is_r_forgetful(&generators::torus(10, 10), 2));
    }

    #[test]
    fn finite_grids_fail_at_corners() {
        // The corner's single escape neighbor moves toward the diagonal
        // node of N^1(u); see the module docs.
        assert!(!is_r_forgetful(&generators::grid(4, 4), 1));
        let g = generators::grid(6, 6);
        let apsp = crate::algo::bfs::all_pairs(&g);
        assert!(
            escape_path(&g, &apsp, 0, 1, 1).is_none(),
            "corner cannot escape"
        );
    }

    #[test]
    fn dense_graphs_are_not_forgetful() {
        assert!(!is_r_forgetful(&generators::complete(4), 1));
        assert!(
            !is_r_forgetful(&generators::petersen(), 1),
            "diameter 2 < 3"
        );
    }

    #[test]
    fn leaves_break_forgetfulness() {
        // A leaf cannot escape its only neighbor.
        assert!(!is_r_forgetful(&generators::path(10), 1));
        assert!(!is_r_forgetful(&generators::star(4), 1));
    }

    #[test]
    fn lemma_2_1_diameter_bound() {
        // Every r-forgetful graph we can certify has diameter >= 2r + 1.
        let candidates = [
            (generators::cycle(6), 1usize),
            (generators::cycle(10), 2),
            (generators::torus(6, 6), 1),
            (generators::torus(7, 7), 1),
            (generators::torus(10, 10), 2),
        ];
        for (g, r) in candidates {
            assert!(is_r_forgetful(&g, r));
            assert!(
                diameter(&g).unwrap() > 2 * r,
                "Lemma 2.1 violated for r = {r}"
            );
        }
    }

    #[test]
    fn escape_path_shape() {
        let g = generators::torus(10, 10);
        let apsp = crate::algo::bfs::all_pairs(&g);
        // Node 22 = (2, 2); arrive from 21 = (2, 1).
        let p = escape_path(&g, &apsp, 22, 21, 2).expect("torus escape exists");
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], 22);
        assert!(!p.contains(&21));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }
}
