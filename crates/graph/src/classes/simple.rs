//! The classes H₁ (minimum degree one) and H₂ (even cycles) of Theorem 1.1.

use crate::algo::components::is_connected;
use crate::graph::Graph;

/// Whether `δ(G) = 1` — class H₁ of Theorem 1.1. The empty graph is not in
/// H₁.
pub fn has_min_degree_one(g: &Graph) -> bool {
    g.min_degree() == Some(1)
}

/// Whether `g` is a cycle (connected and 2-regular).
pub fn is_cycle(g: &Graph) -> bool {
    g.node_count() >= 3 && g.min_degree() == Some(2) && g.max_degree() == Some(2) && is_connected(g)
}

/// Whether `g` is an even cycle — class H₂ of Theorem 1.1.
pub fn is_even_cycle(g: &Graph) -> bool {
    is_cycle(g) && g.node_count().is_multiple_of(2)
}

/// Whether every connected component of `g` lies in H₁ ∪ H₂: minimum
/// degree one or an even cycle. This is the promise class of Theorem 1.1
/// ("a union of both").
pub fn is_theorem_1_1_instance(g: &Graph) -> bool {
    crate::algo::components::connected_components(g)
        .into_iter()
        .all(|comp| {
            let (sub, _) = g.induced(&comp);
            has_min_degree_one(&sub) || is_even_cycle(&sub) || sub.node_count() == 1
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn min_degree_one_class() {
        assert!(has_min_degree_one(&generators::path(4)));
        assert!(has_min_degree_one(&generators::star(3)));
        assert!(has_min_degree_one(&generators::pendant_path(4, 1)));
        assert!(!has_min_degree_one(&generators::cycle(4)));
        assert!(!has_min_degree_one(&Graph::new(0)));
        assert!(
            !has_min_degree_one(&Graph::new(2)),
            "isolated nodes have degree 0"
        );
    }

    #[test]
    fn cycle_recognition() {
        assert!(is_cycle(&generators::cycle(5)));
        assert!(is_even_cycle(&generators::cycle(6)));
        assert!(!is_even_cycle(&generators::cycle(5)));
        assert!(!is_cycle(&generators::path(5)));
        // Two disjoint triangles are 2-regular but not connected.
        let two = generators::cycle(3).disjoint_union(&generators::cycle(3));
        assert!(!is_cycle(&two));
    }

    #[test]
    fn union_class() {
        let mix = generators::path(3).disjoint_union(&generators::cycle(6));
        assert!(is_theorem_1_1_instance(&mix));
        let bad = generators::path(3).disjoint_union(&generators::cycle(5));
        assert!(!is_theorem_1_1_instance(&bad), "odd cycle component");
        let torus = generators::torus(3, 3);
        assert!(!is_theorem_1_1_instance(&torus));
        assert!(is_theorem_1_1_instance(&Graph::new(1)), "singleton allowed");
    }
}
