//! Recognizers for the graph classes the paper's theorems quantify over.
//!
//! * [`simple`] — minimum-degree-one graphs (class H₁ of Theorem 1.1) and
//!   even cycles (class H₂);
//! * [`forgetful`] — the *r-forgetful* property of Section 1.3, including
//!   the escape paths that Lemma 5.4 reuses;
//! * [`shatter`] — shatter points (Section 7.1);
//! * [`watermelon`] — watermelon decomposition (Section 7.2);
//! * [`bdelta`] — the class B(Δ, r) of Section 6 (Theorem 1.2's stage).

pub mod bdelta;
pub mod forgetful;
pub mod shatter;
pub mod simple;
pub mod watermelon;
