//! Shatter points (paper, Section 7.1).
//!
//! A node `v` is a *shatter point* of `G` if `G − N[v]` is disconnected
//! (has at least two connected components). Theorem 1.3 gives a strong and
//! hiding LCP for 2-coloring on graphs admitting a shatter point, and
//! Lemma 7.1 characterizes bipartiteness around one.

use crate::algo::components::connected_components;
use crate::graph::Graph;

/// The decomposition of `G` around a shatter point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShatterDecomposition {
    /// The shatter point `v`.
    pub point: usize,
    /// The neighbors `N(v)`, sorted.
    pub neighborhood: Vec<usize>,
    /// The connected components of `G − N[v]`, each sorted, ordered by
    /// smallest node; always at least two.
    pub components: Vec<Vec<usize>>,
}

/// The components of `G − N[v]` (possibly fewer than two).
pub fn components_without_closed_neighborhood(g: &Graph, v: usize) -> Vec<Vec<usize>> {
    let closed: Vec<usize> = std::iter::once(v)
        .chain(g.neighbors(v).iter().copied())
        .collect();
    let rest: Vec<usize> = g.nodes().filter(|u| !closed.contains(u)).collect();
    let (sub, map) = g.induced(&rest);
    connected_components(&sub)
        .into_iter()
        .map(|comp| {
            let mut orig: Vec<usize> = comp.into_iter().map(|u| map[u]).collect();
            orig.sort_unstable();
            orig
        })
        .collect()
}

/// Whether `v` is a shatter point of `g`.
pub fn is_shatter_point(g: &Graph, v: usize) -> bool {
    components_without_closed_neighborhood(g, v).len() >= 2
}

/// All shatter points of `g`, sorted.
pub fn shatter_points(g: &Graph) -> Vec<usize> {
    g.nodes().filter(|&v| is_shatter_point(g, v)).collect()
}

/// The decomposition around the smallest shatter point, or `None` if `g`
/// has none.
pub fn decompose(g: &Graph) -> Option<ShatterDecomposition> {
    decompose_at(g, *shatter_points(g).first()?)
}

/// The decomposition around a prescribed shatter point, or `None` if `v`
/// is not one.
pub fn decompose_at(g: &Graph, v: usize) -> Option<ShatterDecomposition> {
    let components = components_without_closed_neighborhood(g, v);
    (components.len() >= 2).then(|| ShatterDecomposition {
        point: v,
        neighborhood: g.neighbors(v).to_vec(),
        components,
    })
}

/// Lemma 7.1: with `v` any node and `C₁, …, C_k` the components of
/// `G − N[v]`, `G` is bipartite iff (1) `N(v)` is independent, (2) every
/// `G[C_i]` is bipartite, and (3) the nodes of `N²(v)` in each `C_i` lie in
/// only one side of `G[C_i]`.
///
/// This function checks the three conditions directly (it does *not* call
/// the global bipartiteness test), so tests can compare it against
/// [`crate::algo::bipartite::is_bipartite`].
pub fn lemma_7_1_conditions(g: &Graph, v: usize) -> bool {
    // (1) N(v) independent.
    let nv = g.neighbors(v);
    for (i, &a) in nv.iter().enumerate() {
        for &b in &nv[i + 1..] {
            if g.has_edge(a, b) {
                return false;
            }
        }
    }
    for comp in components_without_closed_neighborhood(g, v) {
        let (sub, map) = g.induced(&comp);
        // (2) G[C_i] bipartite.
        let Ok(sides) = crate::algo::bipartite::bipartition(&sub) else {
            return false;
        };
        // (3) all neighbors-of-N(v) inside C_i lie in one side.
        let mut touched: Option<u8> = None;
        for (new, &old) in map.iter().enumerate() {
            let adjacent_to_nv = g.neighbors(old).iter().any(|w| nv.contains(w));
            if adjacent_to_nv {
                match touched {
                    None => touched = Some(sides[new]),
                    Some(side) if side != sides[new] => return false,
                    Some(_) => {}
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bipartite::is_bipartite;
    use crate::generators;

    #[test]
    fn paths_have_shatter_points() {
        // P8 = the hiding witness of Theorem 1.3: middle nodes shatter it.
        let p8 = generators::path(8);
        let pts = shatter_points(&p8);
        assert!(pts.contains(&3));
        assert!(pts.contains(&4));
        assert!(!pts.contains(&0), "an endpoint leaves one component");
    }

    #[test]
    fn cycles_and_thetas_have_no_shatter_points_but_spiders_do() {
        assert!(shatter_points(&generators::cycle(8)).is_empty());
        assert!(shatter_points(&generators::complete(4)).is_empty());
        // Thetas stay connected through the opposite hub.
        assert!(shatter_points(&generators::theta(4, 4, 4)).is_empty());
        // A spider (three legs of length 3 from a center) shatters at the
        // center: removing N[center] leaves three 2-node tails.
        let spider = Graph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (0, 4),
                (4, 5),
                (5, 6),
                (0, 7),
                (7, 8),
                (8, 9),
            ],
        )
        .unwrap();
        assert!(is_shatter_point(&spider, 0));
        let d = decompose_at(&spider, 0).unwrap();
        assert_eq!(d.components.len(), 3);
    }

    #[test]
    fn decomposition_shape() {
        let p8 = generators::path(8);
        let d = decompose_at(&p8, 4).unwrap();
        assert_eq!(d.point, 4);
        assert_eq!(d.neighborhood, vec![3, 5]);
        assert_eq!(d.components, vec![vec![0, 1, 2], vec![6, 7]]);
        assert!(decompose_at(&p8, 0).is_none());
    }

    #[test]
    fn lemma_7_1_matches_global_bipartiteness() {
        // Lemma 7.1 is stated for an arbitrary node v: the three local
        // conditions at ANY v are equivalent to bipartiteness of G.
        let candidates = [
            generators::path(8),
            generators::theta(4, 4, 4),
            generators::theta(3, 3, 4), // odd + even paths -> odd cycle
            generators::theta(3, 3, 3),
            generators::caterpillar(5, 1),
            generators::pendant_path(5, 3), // C5 with a tail: non-bipartite
            generators::pendant_path(6, 3), // C6 with a tail: bipartite
            generators::grid(3, 3),
            generators::petersen(),
        ];
        for g in candidates {
            let bip = is_bipartite(&g);
            for v in g.nodes() {
                assert_eq!(
                    lemma_7_1_conditions(&g, v),
                    bip,
                    "Lemma 7.1 mismatch at {v} in {g:?}"
                );
            }
        }
    }

    #[test]
    fn pendant_path_shatter_point() {
        // C5 with a 3-node tail: the first tail node shatters the graph
        // into the opened cycle and the tail remainder.
        let g = generators::pendant_path(5, 3);
        let first_tail = 5;
        assert!(is_shatter_point(&g, first_tail));
        assert!(!lemma_7_1_conditions(&g, first_tail), "C5 is not bipartite");
    }
}
