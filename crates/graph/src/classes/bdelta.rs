//! The class `B(Δ, r)` of Section 6: bounded-degree graphs containing at
//! least one connected r-forgetful member that is not a cycle and has
//! minimum degree ≥ 2 — the stage on which Theorem 1.2 (constant-size
//! certificates, general identifiers) plays out.

use crate::algo::components::is_connected;
use crate::classes::{forgetful, simple};
use crate::graph::Graph;

/// Whether `g` respects the degree bound of `B(Δ, r)`.
pub fn respects_degree_bound(g: &Graph, delta: usize) -> bool {
    g.max_degree().unwrap_or(0) <= delta
}

/// Whether `g` is a *qualifying member* for `B(Δ, r)`: connected,
/// r-forgetful, not a cycle, minimum degree ≥ 2, and within the degree
/// bound. A class containing such a member (and otherwise staying under
/// the degree bound) satisfies the hypotheses of Theorem 1.2.
pub fn is_qualifying_member(g: &Graph, delta: usize, r: usize) -> bool {
    respects_degree_bound(g, delta)
        && is_connected(g)
        && !simple::is_cycle(g)
        && g.min_degree().unwrap_or(0) >= 2
        && forgetful::is_r_forgetful(g, r)
}

/// Whether a finite family qualifies as (a fragment of) `B(Δ, r)`: every
/// member respects the degree bound and at least one is a qualifying
/// member.
pub fn family_qualifies<'a>(
    family: impl IntoIterator<Item = &'a Graph>,
    delta: usize,
    r: usize,
) -> bool {
    let mut any_qualifying = false;
    for g in family {
        if !respects_degree_bound(g, delta) {
            return false;
        }
        if !any_qualifying && is_qualifying_member(g, delta, r) {
            any_qualifying = true;
        }
    }
    any_qualifying
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn tori_qualify() {
        // The torus is 4-regular, connected, 1-forgetful, not a cycle and
        // has minimum degree 4 — the canonical Theorem 1.2 witness.
        assert!(is_qualifying_member(&generators::torus(6, 6), 4, 1));
        assert!(is_qualifying_member(&generators::torus(10, 10), 4, 2));
    }

    #[test]
    fn exclusions_hold() {
        // Cycles are excluded even when r-forgetful...
        assert!(!is_qualifying_member(&generators::cycle(10), 2, 1));
        // ...pendant graphs fail the min-degree requirement...
        assert!(!is_qualifying_member(&generators::pendant_path(8, 2), 3, 1));
        // ...dense graphs fail forgetfulness...
        assert!(!is_qualifying_member(&generators::complete(4), 3, 1));
        // ...and the degree bound is enforced.
        assert!(!is_qualifying_member(&generators::torus(6, 6), 3, 1));
    }

    #[test]
    fn family_membership() {
        let family = [
            generators::cycle(6),
            generators::torus(6, 6),
            generators::grid(3, 3),
        ];
        assert!(family_qualifies(family.iter(), 4, 1));
        // Without the torus, nothing qualifies at Δ = 4, r = 1.
        let family = [generators::cycle(6), generators::grid(3, 3)];
        assert!(!family_qualifies(family.iter(), 4, 1));
        // A single over-degree member disqualifies the family.
        let family = [generators::torus(6, 6), generators::star(9)];
        assert!(!family_qualifies(family.iter(), 4, 1));
    }
}
