//! Identifier assignments `Id : V → [N]`, `N = poly(n)` (paper, Section 2.2).
//!
//! Identifiers are injective and bounded by a polynomial in the number of
//! nodes. The bound `N` is known to the nodes (the paper encodes it in the
//! certificate length); we carry it explicitly so that decoders and the
//! Lemma 5.2 identifier-remapping machinery can respect the budget.

use rand::seq::SliceRandom;
use rand::Rng;

/// Default polynomial bound `N = max(8, n^2)` used by convenience
/// constructors; large enough for the `Δ^r |V(H)|^2 ≤ N` slack required by
/// Lemma 5.2 in the small instances we realize.
pub fn default_bound(n: usize) -> u64 {
    (n as u64 * n as u64).max(8)
}

/// An injective identifier assignment for a graph on `n` nodes.
///
/// # Example
///
/// ```
/// use hiding_lcp_graph::IdAssignment;
///
/// let ids = IdAssignment::canonical(4);
/// assert_eq!(ids.id(0), 1);
/// assert_eq!(ids.id(3), 4);
/// assert!(ids.bound() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IdAssignment {
    ids: Vec<u64>,
    bound: u64,
}

impl IdAssignment {
    /// The canonical assignment `Id(v) = v + 1` with the default bound.
    pub fn canonical(n: usize) -> Self {
        IdAssignment {
            ids: (1..=n as u64).collect(),
            bound: default_bound(n),
        }
    }

    /// Builds an assignment from explicit identifiers.
    ///
    /// Returns `None` if the identifiers are not injective, not all in
    /// `1..=bound`, or `ids` is empty while `bound` is zero.
    pub fn from_ids(ids: Vec<u64>, bound: u64) -> Option<Self> {
        let mut seen = ids.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != ids.len() {
            return None;
        }
        if ids.iter().any(|&i| i == 0 || i > bound) {
            return None;
        }
        Some(IdAssignment { ids, bound })
    }

    /// A uniformly random injective assignment into `1..=bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < n as u64`.
    pub fn random<R: Rng + ?Sized>(n: usize, bound: u64, rng: &mut R) -> Self {
        assert!(bound >= n as u64, "bound {bound} too small for {n} nodes");
        // For small bounds sample by shuffling; for large bounds use
        // rejection sampling.
        if bound <= 4 * n as u64 {
            let mut pool: Vec<u64> = (1..=bound).collect();
            pool.shuffle(rng);
            pool.truncate(n);
            IdAssignment { ids: pool, bound }
        } else {
            let mut ids = Vec::with_capacity(n);
            while ids.len() < n {
                let candidate = rng.random_range(1..=bound);
                if !ids.contains(&candidate) {
                    ids.push(candidate);
                }
            }
            IdAssignment { ids, bound }
        }
    }

    /// The identifier of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn id(&self, v: usize) -> u64 {
        self.ids[v]
    }

    /// The node with identifier `id`, if any.
    pub fn node_with_id(&self, id: u64) -> Option<usize> {
        self.ids.iter().position(|&i| i == id)
    }

    /// The bound `N`; every identifier lies in `1..=N`.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// The identifiers as a slice, indexed by node.
    pub fn as_slice(&self) -> &[u64] {
        &self.ids
    }

    /// Applies an order-preserving remapping `f` to every identifier,
    /// keeping the original `bound` unless the image exceeds it, in which
    /// case the bound is raised to the maximum image value.
    ///
    /// This is the primitive behind Lemma 5.2 and Lemma 6.2 of the paper:
    /// order-invariant decoders are insensitive to such remappings.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not strictly increasing on the identifiers present
    /// (which would merge or reorder nodes).
    pub fn remap_order_preserving<F: Fn(u64) -> u64>(&self, f: F) -> IdAssignment {
        let mut pairs: Vec<(u64, u64)> = self.ids.iter().map(|&i| (i, f(i))).collect();
        pairs.sort_unstable();
        for w in pairs.windows(2) {
            assert!(
                w[0].1 < w[1].1,
                "remapping is not strictly increasing: {:?} -> {:?}, {:?} -> {:?}",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        let ids: Vec<u64> = self.ids.iter().map(|&i| f(i)).collect();
        let bound = self.bound.max(ids.iter().copied().max().unwrap_or(0));
        IdAssignment { ids, bound }
    }

    /// Restricts to the nodes listed in `old_of_new` (the map returned by
    /// [`crate::Graph::induced`]).
    pub fn restrict(&self, old_of_new: &[usize]) -> IdAssignment {
        IdAssignment {
            ids: old_of_new.iter().map(|&v| self.ids[v]).collect(),
            bound: self.bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn canonical_ids() {
        let ids = IdAssignment::canonical(5);
        assert_eq!(ids.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(ids.node_with_id(3), Some(2));
        assert_eq!(ids.node_with_id(99), None);
    }

    #[test]
    fn from_ids_validation() {
        assert!(IdAssignment::from_ids(vec![2, 5, 1], 8).is_some());
        assert!(
            IdAssignment::from_ids(vec![2, 2, 1], 8).is_none(),
            "duplicate"
        );
        assert!(IdAssignment::from_ids(vec![0, 1], 8).is_none(), "zero id");
        assert!(
            IdAssignment::from_ids(vec![9, 1], 8).is_none(),
            "above bound"
        );
    }

    #[test]
    fn random_is_injective_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for bound in [10u64, 1000u64] {
            let ids = IdAssignment::random(10, bound, &mut rng);
            let mut sorted = ids.as_slice().to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10);
            assert!(sorted.iter().all(|&i| (1..=bound).contains(&i)));
        }
    }

    #[test]
    fn remap_preserves_order() {
        let ids = IdAssignment::from_ids(vec![3, 1, 7], 8).unwrap();
        let remapped = ids.remap_order_preserving(|i| i * 10);
        assert_eq!(remapped.as_slice(), &[30, 10, 70]);
        assert_eq!(remapped.bound(), 70);
    }

    #[test]
    #[should_panic(expected = "not strictly increasing")]
    fn remap_rejects_collisions() {
        let ids = IdAssignment::from_ids(vec![3, 1, 7], 8).unwrap();
        let _ = ids.remap_order_preserving(|_| 5);
    }

    #[test]
    fn restrict_follows_node_map() {
        let ids = IdAssignment::from_ids(vec![4, 2, 6, 8], 10).unwrap();
        let sub = ids.restrict(&[2, 0]);
        assert_eq!(sub.as_slice(), &[6, 4]);
    }
}
