//! Graph substrate for the `hiding-lcp` workspace.
//!
//! This crate implements, from scratch, everything the paper
//! *"Strong and Hiding Distributed Certification of k-Coloring"*
//! (Modanese, Montealegre, Ríos-Wilson; PODC 2025) assumes about graphs:
//!
//! * simple undirected [`Graph`]s with adjacency queries, induced subgraphs
//!   and disjoint unions ([`graph`]);
//! * *port assignments* `prt : V × E → [Δ]` exactly as in Section 2.2 of the
//!   paper ([`ports`]);
//! * *identifier assignments* `Id : V → [N]` with `N = poly(n)` ([`ids`]);
//! * generators for every graph family the paper evaluates on — paths,
//!   cycles, stars, grids, tori, trees, watermelon graphs, pendant
//!   (min-degree-1) graphs, theta graphs and exhaustive small-graph
//!   enumeration ([`generators`]);
//! * classic graph algorithms: BFS distances, connected components,
//!   bipartiteness with odd-cycle certificates, exact k-coloring, diameter,
//!   girth, non-backtracking walks ([`algo`]);
//! * recognizers for the paper's graph classes: minimum degree one, even
//!   cycles, *r-forgetful* graphs (Section 1.3), graphs with a *shatter
//!   point* (Section 7.1) and *watermelon* graphs (Section 7.2)
//!   ([`classes`]);
//! * canonical forms / isomorphism testing for small graphs ([`canon`]) and
//!   Graphviz export ([`dot`]).
//!
//! # Example
//!
//! ```
//! use hiding_lcp_graph::generators;
//! use hiding_lcp_graph::algo::bipartite;
//!
//! let c6 = generators::cycle(6);
//! assert!(bipartite::bipartition(&c6).is_ok());
//! let c5 = generators::cycle(5);
//! assert!(bipartite::bipartition(&c5).is_err());
//! ```

pub mod algo;
pub mod canon;
pub mod classes;
pub mod dot;
pub mod generators;
pub mod graph;
pub mod ids;
#[cfg(conformance_mutants)]
pub mod mutants;
pub mod ports;

pub use graph::{Graph, GraphError};
pub use ids::IdAssignment;
pub use ports::PortAssignment;
