//! The core simple undirected [`Graph`] type.
//!
//! Nodes are dense indices `0..n`. Neighbor lists are kept sorted so that
//! adjacency queries are `O(log d)` and iteration order is deterministic —
//! determinism matters throughout the workspace because canonical view
//! encodings and "lexicographically first" colorings (Lemma 3.2 of the
//! paper) must be reproducible.

use std::fmt;

/// Error returned by fallible [`Graph`] mutations.
///
/// # Example
///
/// ```
/// use hiding_lcp_graph::{Graph, GraphError};
/// let mut g = Graph::new(2);
/// assert_eq!(g.add_edge(0, 5), Err(GraphError::NodeOutOfRange { node: 5, n: 2 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphError {
    /// A node index was `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// The edge is already present.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// Self-loops are not representable.
    ///
    /// The paper permits loops in principle (Section 2) but never uses them:
    /// a graph with a loop is never k-colorable, so it is a trivial
    /// no-instance for every language studied here.
    SelfLoop {
        /// The node at which the loop was attempted.
        node: usize,
    },
    /// The edge is not present (returned by [`Graph::remove_edge`]).
    MissingEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::DuplicateEdge { u, v } => write!(f, "edge {{{u}, {v}}} already present"),
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} not supported"),
            GraphError::MissingEdge { u, v } => write!(f, "edge {{{u}, {v}}} not present"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A finite simple undirected graph with nodes `0..n`.
///
/// # Example
///
/// ```
/// use hiding_lcp_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert!(g.has_edge(0, 3));
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    num_edges: usize,
}

impl Graph {
    /// Creates an edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph on `n` nodes from an edge list.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] produced by [`Graph::add_edge`].
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterator over node indices `0..n`.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.adj.len()
    }

    /// Iterator over edges as pairs `(u, v)` with `u < v`, in lexicographic
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Adds the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range endpoints, self-loops and duplicate edges.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        let n = self.adj.len();
        for node in [u, v] {
            if node >= n {
                return Err(GraphError::NodeOutOfRange { node, n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        match self.adj[u].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge { u, v }),
            Err(pos) => self.adj[u].insert(pos, v),
        }
        let pos = self.adj[v].binary_search(&u).unwrap_err();
        self.adj[v].insert(pos, u);
        self.num_edges += 1;
        Ok(())
    }

    /// Removes the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Fails if the edge is absent or an endpoint is out of range.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        let n = self.adj.len();
        for node in [u, v] {
            if node >= n {
                return Err(GraphError::NodeOutOfRange { node, n });
            }
        }
        match self.adj[u].binary_search(&v) {
            Ok(pos) => {
                self.adj[u].remove(pos);
            }
            Err(_) => return Err(GraphError::MissingEdge { u, v }),
        }
        let pos = self.adj[v]
            .binary_search(&u)
            .expect("adjacency lists out of sync");
        self.adj[v].remove(pos);
        self.num_edges -= 1;
        Ok(())
    }

    /// Whether the edge `{u, v}` is present. Out-of-range queries return
    /// `false`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj
            .get(u)
            .is_some_and(|nbrs| nbrs.binary_search(&v).is_ok())
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// The degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// The minimum degree `δ(G)`, or `None` for the empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        self.adj.iter().map(Vec::len).min()
    }

    /// The maximum degree `Δ(G)`, or `None` for the empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        self.adj.iter().map(Vec::len).max()
    }

    /// Appends `count` isolated nodes, returning the index of the first new
    /// node.
    ///
    /// This is the `G ∪ W` padding operation from the proof of Lemma 6.2 in
    /// the paper (extending an instance with an independent set of fresh
    /// nodes to enlarge the identifier space).
    pub fn add_isolated_nodes(&mut self, count: usize) -> usize {
        let first = self.adj.len();
        self.adj
            .extend(std::iter::repeat_with(Vec::new).take(count));
        first
    }

    /// The subgraph induced by `keep` (duplicates ignored), together with
    /// the map from new indices to the original ones.
    ///
    /// # Panics
    ///
    /// Panics if any index in `keep` is out of range.
    pub fn induced(&self, keep: &[usize]) -> (Graph, Vec<usize>) {
        let mut old_of_new: Vec<usize> = keep.to_vec();
        old_of_new.sort_unstable();
        old_of_new.dedup();
        let mut new_of_old = vec![usize::MAX; self.adj.len()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old] = new;
        }
        let mut g = Graph::new(old_of_new.len());
        #[cfg(conformance_mutants)]
        let mut dropped_one = false;
        for (new_u, &old_u) in old_of_new.iter().enumerate() {
            for &old_v in &self.adj[old_u] {
                let new_v = new_of_old[old_v];
                if new_v != usize::MAX && new_u < new_v {
                    #[cfg(conformance_mutants)]
                    if crate::mutants::active("induced_drops_edge") && !dropped_one {
                        dropped_one = true;
                        continue;
                    }
                    g.add_edge(new_u, new_v)
                        .expect("induced subgraph edges are valid");
                }
            }
        }
        (g, old_of_new)
    }

    /// Disjoint union `G ⊎ H`; nodes of `other` are shifted by
    /// `self.node_count()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let offset = self.adj.len();
        let mut g = self.clone();
        g.adj.extend(
            other
                .adj
                .iter()
                .map(|nbrs| nbrs.iter().map(|&v| v + offset).collect::<Vec<_>>()),
        );
        g.num_edges += other.num_edges;
        g
    }

    /// The adjacency matrix packed row-major into a bit vector of `u64`
    /// words; used by [`crate::canon`] for canonical forms.
    pub fn adjacency_bits(&self) -> Vec<u64> {
        let n = self.adj.len();
        let mut bits = vec![0u64; (n * n).div_ceil(64)];
        for (u, v) in self.edges() {
            for (a, b) in [(u, v), (v, u)] {
                let idx = a * n + b;
                bits[idx / 64] |= 1 << (idx % 64);
            }
        }
        bits
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.node_count(),
            self.edge_count(),
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.min_degree(), None);
        assert_eq!(g.max_degree(), None);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        g.add_edge(2, 0).unwrap();
        g.add_edge(0, 1).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut g = Graph::new(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
        assert_eq!(
            g.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        g.remove_edge(1, 0).unwrap();
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(
            g.remove_edge(0, 1),
            Err(GraphError::MissingEdge { u: 0, v: 1 })
        );
    }

    #[test]
    fn edges_iterator_is_sorted_and_complete() {
        let g = Graph::from_edges(4, &[(3, 0), (1, 2), (0, 1)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn induced_subgraph() {
        // Square 0-1-2-3-0 plus chord 0-2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let (h, map) = g.induced(&[0, 2, 3]);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(h.node_count(), 3);
        // Edges among {0,2,3}: {0,2}, {2,3}, {3,0} -> triangle.
        assert_eq!(h.edge_count(), 3);
        assert!(h.has_edge(0, 1) && h.has_edge(1, 2) && h.has_edge(0, 2));
    }

    #[test]
    fn induced_ignores_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let (h, map) = g.induced(&[1, 0, 1]);
        assert_eq!(map, vec![0, 1]);
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    fn disjoint_union_shifts_indices() {
        let a = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let b = Graph::from_edges(3, &[(0, 2)]).unwrap();
        let u = a.disjoint_union(&b);
        assert_eq!(u.node_count(), 5);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 4));
        assert!(!u.has_edge(1, 2));
    }

    #[test]
    fn isolated_node_padding() {
        let mut g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let first = g.add_isolated_nodes(3);
        assert_eq!(first, 2);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_bits_symmetry() {
        let g = Graph::from_edges(3, &[(0, 2)]).unwrap();
        let bits = g.adjacency_bits();
        let get = |a: usize, b: usize| bits[(a * 3 + b) / 64] >> ((a * 3 + b) % 64) & 1;
        assert_eq!(get(0, 2), 1);
        assert_eq!(get(2, 0), 1);
        assert_eq!(get(0, 1), 0);
    }
}
