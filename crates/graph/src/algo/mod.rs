//! Graph algorithms used throughout the workspace.
//!
//! * [`bfs`] — single/all-source distances, balls `N^r(v)`, eccentricities
//!   and diameter (Lemma 2.1 checks);
//! * [`components`] — connected components;
//! * [`bipartite`] — 2-colorability with a two-sided certificate: a
//!   bipartition on success, an odd cycle on failure;
//! * [`coloring`] — proper-coloring validation, exact k-coloring, the
//!   *lexicographically first* proper coloring required by the extraction
//!   decoder of Lemma 3.2, and chromatic numbers;
//! * [`cycles`] — girth, cycle-space dimension, cycle finding (Lemma 5.5
//!   needs a cycle in a prescribed component avoiding a prescribed node);
//! * [`paths`] — shortest paths (with forbidden nodes) and shortest
//!   *non-backtracking* walks with optional parity constraints (the walk
//!   manipulations of Section 5.2);
//! * [`automorphism`] — port-preserving automorphism enumeration backing
//!   the symmetry-quotient sweep.

pub mod automorphism;
pub mod bfs;
pub mod bipartite;
pub mod coloring;
pub mod components;
pub mod cycles;
pub mod paths;
