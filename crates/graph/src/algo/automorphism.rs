//! Port-preserving automorphism enumeration.
//!
//! The symmetry-quotient sweep (core crate, `verify::symmetry`) needs the
//! group of *port-preserving* automorphisms of an instance: bijections
//! `π : V → V` with
//!
//! ```text
//! nbr(π(v), p) = π(nbr(v, p))        for every v and every port p,
//! ```
//!
//! where `nbr(v, p)` is the neighbor reached from `v` through port `p`.
//! Under such a π, node `v`'s anonymous radius-r view of a labeling
//! `L ∘ π⁻¹` is *literally equal* (ports and all) to node `π⁻¹(v)`'s view
//! of `L` — which is exactly the invariance the quotient exploits.
//!
//! Port preservation makes the search nearly free: once `π(v)` is fixed
//! for one node of a connected component, every other image in the
//! component is forced by following ports (`π(nbr(v, p)) = nbr(π(v), p)`).
//! Branching therefore only happens once per component, over candidate
//! anchor images pre-filtered by partition refinement (degree classes
//! refined by neighbor-class multisets, the same invariant family the
//! DSATUR machinery orders by). A final adjacency check over packed bitset
//! rows guards the propagation.

use crate::graph::Graph;
use crate::ports::PortAssignment;

/// Enumerates all port-preserving automorphisms of `(g, ports)` as
/// permutation vectors (`perm[v]` is the image of `v`). The identity is
/// always included, so the result is the full group, not a generator set.
///
/// Returns `None` when the group has more than `cap` elements — callers
/// treat that as "too symmetric to quotient cheaply" and fall back to the
/// full walk.
pub fn port_automorphisms(
    g: &Graph,
    ports: &PortAssignment,
    cap: usize,
) -> Option<Vec<Vec<usize>>> {
    let n = g.node_count();
    if n == 0 {
        return Some(vec![Vec::new()]);
    }
    let classes = refinement_classes(g);
    // Packed adjacency rows: node v owns words [v*words, (v+1)*words).
    let words = n.div_ceil(64);
    let mut rows = vec![0u64; n * words];
    for (u, v) in g.edges() {
        rows[u * words + v / 64] |= 1 << (v % 64);
        rows[v * words + u / 64] |= 1 << (u % 64);
    }
    let mut search = Search {
        g,
        ports,
        classes: &classes,
        rows: &rows,
        words,
        perm: vec![usize::MAX; n],
        used: vec![false; n],
        found: Vec::new(),
        cap,
    };
    if !search.run(0) {
        return None;
    }
    #[cfg_attr(not(conformance_mutants), allow(unused_mut))]
    let mut found = search.found;
    #[cfg(conformance_mutants)]
    if crate::mutants::active("orbit_drop_generator") {
        // Silently lose one non-identity element: the result is no longer
        // a group, so orbit multiplicities stop summing to |Σ|^n.
        if let Some(pos) = found
            .iter()
            .rposition(|p| p.iter().enumerate().any(|(v, &w)| v != w))
        {
            found.remove(pos);
        }
    }
    Some(found)
}

/// The *number* of port-preserving automorphisms, or `None` above `cap`.
pub fn port_automorphism_count(g: &Graph, ports: &PortAssignment, cap: usize) -> Option<usize> {
    port_automorphisms(g, ports, cap).map(|group| group.len())
}

/// Partition refinement: start from degree classes and refine each class
/// by the multiset of neighbor classes until a fixpoint. Nodes in
/// different classes cannot be exchanged by any automorphism, so anchor
/// candidates are drawn from the anchor's class only.
fn refinement_classes(g: &Graph) -> Vec<usize> {
    let mut class: Vec<usize> = densify(&g.nodes().map(|v| g.degree(v)).collect::<Vec<_>>());
    loop {
        let sigs: Vec<(usize, Vec<usize>)> = g
            .nodes()
            .map(|v| {
                let mut nbr: Vec<usize> = g.neighbors(v).iter().map(|&u| class[u]).collect();
                nbr.sort_unstable();
                (class[v], nbr)
            })
            .collect();
        let next = densify(&sigs);
        if next == class {
            return class;
        }
        class = next;
    }
}

/// Maps arbitrary per-node signatures to dense class ids, ordered by
/// first occurrence (stable across iterations, which is what the fixpoint
/// test above relies on).
fn densify<T: Clone + Ord>(sig: &[T]) -> Vec<usize> {
    let mut sorted: Vec<T> = sig.to_vec();
    sorted.sort();
    sorted.dedup();
    sig.iter()
        .map(|s| sorted.binary_search(s).expect("own signature"))
        .collect()
}

struct Search<'a> {
    g: &'a Graph,
    ports: &'a PortAssignment,
    classes: &'a [usize],
    rows: &'a [u64],
    words: usize,
    perm: Vec<usize>,
    used: Vec<bool>,
    found: Vec<Vec<usize>>,
    cap: usize,
}

impl Search<'_> {
    /// Backtracking over component anchors; returns `false` iff the cap
    /// was exceeded (aborts the whole enumeration).
    fn run(&mut self, from: usize) -> bool {
        let Some(v) = (from..self.perm.len()).find(|&v| self.perm[v] == usize::MAX) else {
            return self.record();
        };
        for w in self.g.nodes() {
            if self.used[w] || self.classes[w] != self.classes[v] {
                continue;
            }
            let mut trail = Vec::new();
            if self.propagate(v, w, &mut trail) && !self.run(v + 1) {
                return false;
            }
            for x in trail {
                self.used[self.perm[x]] = false;
                self.perm[x] = usize::MAX;
            }
        }
        true
    }

    /// Forces `π(v) = w` and follows ports through `v`'s component,
    /// logging every assignment into `trail`. Returns `false` on a
    /// conflict (the caller unwinds the trail either way).
    fn propagate(&mut self, v: usize, w: usize, trail: &mut Vec<usize>) -> bool {
        let mut queue = vec![(v, w)];
        if !self.assign(v, w, trail) {
            return false;
        }
        while let Some((a, b)) = queue.pop() {
            for p in 1..=self.ports.degree(a) as u16 {
                let x = self.ports.neighbor_at(a, p);
                let y = self.ports.neighbor_at(b, p);
                match self.perm[x] {
                    usize::MAX => {
                        if !self.assign(x, y, trail) {
                            return false;
                        }
                        queue.push((x, y));
                    }
                    img if img != y => return false,
                    _ => {}
                }
            }
        }
        true
    }

    fn assign(&mut self, x: usize, y: usize, trail: &mut Vec<usize>) -> bool {
        if self.used[y] || self.ports.degree(x) != self.ports.degree(y) {
            return false;
        }
        self.perm[x] = y;
        self.used[y] = true;
        trail.push(x);
        true
    }

    /// Verifies the completed map against the packed adjacency rows and
    /// stores it. Port propagation already guarantees adjacency within
    /// components, so this is a cheap independent guard, word-for-word:
    /// π applied to row `v` must reproduce row `π(v)`.
    fn record(&mut self) -> bool {
        let n = self.perm.len();
        for v in 0..n {
            let mut image = vec![0u64; self.words];
            for u in self.g.neighbors(v) {
                let pu = self.perm[*u];
                image[pu / 64] |= 1 << (pu % 64);
            }
            let pv = self.perm[v];
            if image != self.rows[pv * self.words..(pv + 1) * self.words] {
                return true; // not an automorphism; skip, keep searching
            }
        }
        if self.found.len() >= self.cap {
            return false;
        }
        self.found.push(self.perm.clone());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::ports;

    #[test]
    fn symmetric_cycle_has_all_rotations() {
        for n in [3usize, 4, 5, 8] {
            let g = generators::cycle(n);
            let prt = ports::cycle_symmetric(&g);
            let group = port_automorphisms(&g, &prt, 1 << 10).unwrap();
            assert_eq!(group.len(), n, "C{n} with symmetric ports: n rotations");
            for s in 0..n {
                let rot: Vec<usize> = (0..n).map(|v| (v + s) % n).collect();
                assert!(group.contains(&rot), "rotation by {s} missing");
            }
        }
    }

    #[test]
    fn canonical_ports_break_cycle_symmetry() {
        // Canonical (sorted-neighbor) ports are not rotation-invariant:
        // node 0 of C5 sees (1, 4) while node 1 sees (0, 2), so following
        // port 1 goes "up" from most nodes but "down" from node 0.
        let g = generators::cycle(5);
        let prt = PortAssignment::canonical(&g);
        let group = port_automorphisms(&g, &prt, 1 << 10).unwrap();
        assert!(
            group.len() < 5,
            "canonical ports must kill some rotations, got {}",
            group.len()
        );
        assert!(group
            .iter()
            .any(|p| p.iter().enumerate().all(|(v, &w)| v == w)));
    }

    #[test]
    fn path_flip_is_rejected_under_canonical_ports() {
        // The flip 0↔3, 1↔2 of P4 preserves adjacency, but canonical
        // ports at node 1 list 0 before 2 while node 2 lists 1 before 3,
        // so following port 1 after the flip lands on the wrong side:
        // only port-preserving maps survive.
        let g = generators::path(4);
        let prt = PortAssignment::canonical(&g);
        let group = port_automorphisms(&g, &prt, 1 << 10).unwrap();
        let flip = vec![3usize, 2, 1, 0];
        assert!(!group.contains(&flip), "flip is not port-preserving");
        assert!(!group.is_empty());
        for p in &group {
            for v in g.nodes() {
                for port in 1..=prt.degree(v) as u16 {
                    assert_eq!(prt.neighbor_at(p[v], port), p[prt.neighbor_at(v, port)]);
                }
            }
        }
    }

    #[test]
    fn every_returned_map_is_port_preserving() {
        for g in [
            generators::cycle(6),
            generators::star(4),
            generators::complete(4),
            generators::grid(2, 3),
        ] {
            let prt = PortAssignment::canonical(&g);
            let group = port_automorphisms(&g, &prt, 1 << 12).unwrap();
            assert!(!group.is_empty(), "identity always present");
            for p in &group {
                let mut seen = vec![false; g.node_count()];
                for &w in p {
                    assert!(!seen[w], "not a bijection");
                    seen[w] = true;
                }
                for v in g.nodes() {
                    for port in 1..=prt.degree(v) as u16 {
                        assert_eq!(
                            prt.neighbor_at(p[v], port),
                            p[prt.neighbor_at(v, port)],
                            "port {port} at {v} broken"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn group_is_closed_under_composition() {
        let g = generators::cycle(8);
        let prt = ports::cycle_symmetric(&g);
        let group = port_automorphisms(&g, &prt, 1 << 10).unwrap();
        for a in &group {
            for b in &group {
                let ab: Vec<usize> = (0..8).map(|v| a[b[v]]).collect();
                assert!(group.contains(&ab), "composition escapes the set");
            }
        }
    }

    #[test]
    fn cap_exceeded_returns_none() {
        let g = generators::cycle(8);
        let prt = ports::cycle_symmetric(&g);
        assert_eq!(port_automorphisms(&g, &prt, 3), None);
        assert_eq!(port_automorphism_count(&g, &prt, 3), None);
        assert_eq!(port_automorphism_count(&g, &prt, 8), Some(8));
    }

    #[test]
    fn empty_graph_has_the_empty_identity() {
        let g = Graph::new(0);
        let prt = PortAssignment::canonical(&g);
        assert_eq!(port_automorphisms(&g, &prt, 1), Some(vec![Vec::new()]));
    }
}
