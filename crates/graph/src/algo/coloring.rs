//! Proper k-colorings: validation, exact search, lexicographically-first
//! colorings and chromatic numbers.
//!
//! The extraction decoder of Lemma 3.2 colors the accepting neighborhood
//! graph with "the lexicographically first coloring … where nodes are
//! ordered as they appear in the output of A"; [`lex_first_coloring`] is
//! exactly that deterministic choice.

use crate::graph::Graph;

/// Whether `colors` is a proper coloring of `g` with palette `0..k`.
///
/// Returns `false` if `colors` has the wrong length or uses a color `≥ k`.
pub fn is_proper_coloring(g: &Graph, colors: &[usize], k: usize) -> bool {
    colors.len() == g.node_count()
        && colors.iter().all(|&c| c < k)
        && g.edges().all(|(u, v)| colors[u] != colors[v])
}

/// The lexicographically first proper k-coloring of `g` in node order, or
/// `None` if `g` is not k-colorable.
///
/// "Lexicographically first" compares the color vectors
/// `(c(0), c(1), …, c(n-1))` entrywise; the backtracking search below
/// returns exactly that minimum because it always tries smaller colors
/// first.
pub fn lex_first_coloring(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.node_count();
    let mut colors = vec![usize::MAX; n];
    if color_from(g, k, 0, &mut colors) {
        Some(colors)
    } else {
        None
    }
}

fn color_from(g: &Graph, k: usize, v: usize, colors: &mut Vec<usize>) -> bool {
    if v == g.node_count() {
        return true;
    }
    'next_color: for c in 0..k {
        for &u in g.neighbors(v) {
            if u < v && colors[u] == c {
                continue 'next_color;
            }
        }
        colors[v] = c;
        if color_from(g, k, v + 1, colors) {
            return true;
        }
        colors[v] = usize::MAX;
    }
    false
}

/// Bitset adjacency: `words` 64-bit words per node row.
struct BitAdj {
    words: usize,
    rows: Vec<u64>,
}

impl BitAdj {
    fn new(g: &Graph) -> Self {
        let n = g.node_count();
        let words = n.div_ceil(64).max(1);
        let mut rows = vec![0u64; n * words];
        for (u, v) in g.edges() {
            if u != v {
                rows[u * words + v / 64] |= 1 << (v % 64);
                rows[v * words + u / 64] |= 1 << (u % 64);
            }
        }
        BitAdj { words, rows }
    }

    fn row(&self, v: usize) -> &[u64] {
        &self.rows[v * self.words..(v + 1) * self.words]
    }
}

/// Exact k-colorability by DSATUR-ordered backtracking over bitset
/// adjacency. At every step the search branches on an *uncolored* node of
/// maximum saturation (number of distinct neighbor colors), breaking ties
/// by maximum degree then minimum index, and only ever opens one fresh
/// color beyond those already used (colorings are counted up to color
/// permutation, so trying a second fresh color is redundant).
///
/// Limited to `k ≤ 128` so a node's forbidden palette fits in a `u128`
/// saturation mask; callers with larger palettes fall back to the
/// lexicographic search (any graph needing more than 128 colors in this
/// repo would be far beyond sweep range anyway).
fn dsatur_k_colorable(g: &Graph, k: usize) -> bool {
    let n = g.node_count();
    if k >= n {
        return true;
    }
    if k == 0 {
        return n == 0;
    }
    let adj = BitAdj::new(g);
    // sat[v] = bitmask of colors used by v's colored neighbors.
    let mut sat = vec![0u128; n];
    let mut colors = vec![usize::MAX; n];
    let degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    dsatur_step(&adj, k, &degrees, &mut sat, &mut colors, 0, 0)
}

fn dsatur_step(
    adj: &BitAdj,
    k: usize,
    degrees: &[usize],
    sat: &mut [u128],
    colors: &mut [usize],
    colored: usize,
    used: usize,
) -> bool {
    let n = colors.len();
    if colored == n {
        return true;
    }
    // DSATUR pick: max saturation, then max degree, then min index.
    let mut pick = usize::MAX;
    let mut best = (0usize, 0usize);
    for v in 0..n {
        if colors[v] != usize::MAX {
            continue;
        }
        let key = (sat[v].count_ones() as usize, degrees[v]);
        if pick == usize::MAX || key > best {
            pick = v;
            best = key;
        }
    }
    // Symmetry breaking: at most one color beyond those already in use.
    let limit = k.min(used + 1);
    #[cfg(conformance_mutants)]
    let limit = if crate::mutants::active("dsatur_no_fresh_color") {
        k.min(used.max(1))
    } else {
        limit
    };
    for c in 0..limit {
        if sat[pick] & (1 << c) != 0 {
            continue;
        }
        colors[pick] = c;
        let bit = 1u128 << c;
        let mut touched = Vec::new();
        for (w, &word) in adj.row(pick).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let u = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                if colors[u] == usize::MAX && sat[u] & bit == 0 {
                    sat[u] |= bit;
                    touched.push(u);
                }
            }
        }
        if dsatur_step(adj, k, degrees, sat, colors, colored + 1, used.max(c + 1)) {
            return true;
        }
        for &u in &touched {
            #[cfg(conformance_mutants)]
            if crate::mutants::active("dsatur_sat_undo_dropped") {
                break;
            }
            sat[u] &= !bit;
        }
        colors[pick] = usize::MAX;
    }
    false
}

/// Whether `g` is k-colorable, i.e. `g ∈ G(k-col)`.
///
/// Decided by [`dsatur_k_colorable`] for `k ≤ 128` (the hot path behind
/// hiding verdicts on accepting neighborhood graphs), falling back to the
/// lexicographic search beyond that.
pub fn is_k_colorable(g: &Graph, k: usize) -> bool {
    if k <= 128 {
        dsatur_k_colorable(g, k)
    } else {
        lex_first_coloring(g, k).is_some()
    }
}

/// The chromatic number of `g` (0 for the empty graph).
pub fn chromatic_number(g: &Graph) -> usize {
    if g.node_count() == 0 {
        return 0;
    }
    let ub = g.max_degree().unwrap_or(0) + 1;
    (1..=ub)
        .find(|&k| is_k_colorable(g, k))
        .expect("Δ + 1 colors always suffice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn validation() {
        let c4 = generators::cycle(4);
        assert!(is_proper_coloring(&c4, &[0, 1, 0, 1], 2));
        assert!(!is_proper_coloring(&c4, &[0, 1, 0, 0], 2));
        assert!(!is_proper_coloring(&c4, &[0, 1, 0], 2), "wrong length");
        assert!(
            !is_proper_coloring(&c4, &[0, 2, 0, 2], 2),
            "palette overflow"
        );
    }

    #[test]
    fn lex_first_is_minimal() {
        let p4 = generators::path(4);
        assert_eq!(lex_first_coloring(&p4, 2), Some(vec![0, 1, 0, 1]));
        // With 3 colors the lex-first coloring still uses the smallest.
        assert_eq!(lex_first_coloring(&p4, 3), Some(vec![0, 1, 0, 1]));
        let k3 = generators::complete(3);
        assert_eq!(lex_first_coloring(&k3, 3), Some(vec![0, 1, 2]));
    }

    #[test]
    fn colorability() {
        assert!(is_k_colorable(&generators::cycle(6), 2));
        assert!(!is_k_colorable(&generators::cycle(5), 2));
        assert!(is_k_colorable(&generators::cycle(5), 3));
        assert!(!is_k_colorable(&generators::complete(4), 3));
        assert!(is_k_colorable(&Graph::new(3), 1));
        assert!(!is_k_colorable(&generators::path(2), 1));
    }

    #[test]
    fn chromatic_numbers() {
        assert_eq!(chromatic_number(&Graph::new(0)), 0);
        assert_eq!(chromatic_number(&Graph::new(4)), 1);
        assert_eq!(chromatic_number(&generators::path(5)), 2);
        assert_eq!(chromatic_number(&generators::cycle(7)), 3);
        assert_eq!(chromatic_number(&generators::complete(5)), 5);
        assert_eq!(chromatic_number(&generators::petersen()), 3);
        assert_eq!(chromatic_number(&generators::grid(3, 3)), 2);
    }

    #[test]
    fn lex_first_fails_gracefully() {
        assert_eq!(lex_first_coloring(&generators::complete(4), 3), None);
    }

    /// All graphs on `n` nodes, as edge bitmasks over the `n(n-1)/2` pairs.
    fn all_graphs(n: usize) -> Vec<Graph> {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .collect();
        (0..1u32 << pairs.len())
            .map(|mask| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        g.add_edge(u, v).unwrap();
                    }
                }
                g
            })
            .collect()
    }

    #[test]
    fn dsatur_matches_lex_oracle_exhaustively() {
        // Every graph on up to 5 nodes, every palette 0..=5: the DSATUR
        // search must agree with the lexicographic backtracking oracle.
        for n in 0..=5 {
            for g in all_graphs(n) {
                for k in 0..=5 {
                    assert_eq!(
                        dsatur_k_colorable(&g, k),
                        lex_first_coloring(&g, k).is_some(),
                        "n={n} k={k} edges={:?}",
                        g.edges().collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn dsatur_handles_larger_structured_graphs() {
        assert!(dsatur_k_colorable(&generators::petersen(), 3));
        assert!(!dsatur_k_colorable(&generators::petersen(), 2));
        assert!(dsatur_k_colorable(&generators::grid(5, 7), 2));
        assert!(!dsatur_k_colorable(&generators::complete(20), 19));
        assert!(dsatur_k_colorable(&generators::complete(20), 20));
        // A graph wider than one bitset word.
        assert!(dsatur_k_colorable(&generators::cycle(130), 2));
        assert!(!dsatur_k_colorable(&generators::cycle(131), 2));
        assert!(dsatur_k_colorable(&generators::cycle(131), 3));
    }
}
