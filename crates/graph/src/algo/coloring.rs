//! Proper k-colorings: validation, exact search, lexicographically-first
//! colorings and chromatic numbers.
//!
//! The extraction decoder of Lemma 3.2 colors the accepting neighborhood
//! graph with "the lexicographically first coloring … where nodes are
//! ordered as they appear in the output of A"; [`lex_first_coloring`] is
//! exactly that deterministic choice.

use crate::graph::Graph;

/// Whether `colors` is a proper coloring of `g` with palette `0..k`.
///
/// Returns `false` if `colors` has the wrong length or uses a color `≥ k`.
pub fn is_proper_coloring(g: &Graph, colors: &[usize], k: usize) -> bool {
    colors.len() == g.node_count()
        && colors.iter().all(|&c| c < k)
        && g.edges().all(|(u, v)| colors[u] != colors[v])
}

/// The lexicographically first proper k-coloring of `g` in node order, or
/// `None` if `g` is not k-colorable.
///
/// "Lexicographically first" compares the color vectors
/// `(c(0), c(1), …, c(n-1))` entrywise; the backtracking search below
/// returns exactly that minimum because it always tries smaller colors
/// first.
pub fn lex_first_coloring(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.node_count();
    let mut colors = vec![usize::MAX; n];
    if color_from(g, k, 0, &mut colors) {
        Some(colors)
    } else {
        None
    }
}

fn color_from(g: &Graph, k: usize, v: usize, colors: &mut Vec<usize>) -> bool {
    if v == g.node_count() {
        return true;
    }
    'next_color: for c in 0..k {
        for &u in g.neighbors(v) {
            if u < v && colors[u] == c {
                continue 'next_color;
            }
        }
        colors[v] = c;
        if color_from(g, k, v + 1, colors) {
            return true;
        }
        colors[v] = usize::MAX;
    }
    false
}

/// Whether `g` is k-colorable, i.e. `g ∈ G(k-col)`.
pub fn is_k_colorable(g: &Graph, k: usize) -> bool {
    lex_first_coloring(g, k).is_some()
}

/// The chromatic number of `g` (0 for the empty graph).
pub fn chromatic_number(g: &Graph) -> usize {
    if g.node_count() == 0 {
        return 0;
    }
    let ub = g.max_degree().unwrap_or(0) + 1;
    (1..=ub)
        .find(|&k| is_k_colorable(g, k))
        .expect("Δ + 1 colors always suffice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn validation() {
        let c4 = generators::cycle(4);
        assert!(is_proper_coloring(&c4, &[0, 1, 0, 1], 2));
        assert!(!is_proper_coloring(&c4, &[0, 1, 0, 0], 2));
        assert!(!is_proper_coloring(&c4, &[0, 1, 0], 2), "wrong length");
        assert!(
            !is_proper_coloring(&c4, &[0, 2, 0, 2], 2),
            "palette overflow"
        );
    }

    #[test]
    fn lex_first_is_minimal() {
        let p4 = generators::path(4);
        assert_eq!(lex_first_coloring(&p4, 2), Some(vec![0, 1, 0, 1]));
        // With 3 colors the lex-first coloring still uses the smallest.
        assert_eq!(lex_first_coloring(&p4, 3), Some(vec![0, 1, 0, 1]));
        let k3 = generators::complete(3);
        assert_eq!(lex_first_coloring(&k3, 3), Some(vec![0, 1, 2]));
    }

    #[test]
    fn colorability() {
        assert!(is_k_colorable(&generators::cycle(6), 2));
        assert!(!is_k_colorable(&generators::cycle(5), 2));
        assert!(is_k_colorable(&generators::cycle(5), 3));
        assert!(!is_k_colorable(&generators::complete(4), 3));
        assert!(is_k_colorable(&Graph::new(3), 1));
        assert!(!is_k_colorable(&generators::path(2), 1));
    }

    #[test]
    fn chromatic_numbers() {
        assert_eq!(chromatic_number(&Graph::new(0)), 0);
        assert_eq!(chromatic_number(&Graph::new(4)), 1);
        assert_eq!(chromatic_number(&generators::path(5)), 2);
        assert_eq!(chromatic_number(&generators::cycle(7)), 3);
        assert_eq!(chromatic_number(&generators::complete(5)), 5);
        assert_eq!(chromatic_number(&generators::petersen()), 3);
        assert_eq!(chromatic_number(&generators::grid(3, 3)), 2);
    }

    #[test]
    fn lex_first_fails_gracefully() {
        assert_eq!(lex_first_coloring(&generators::complete(4), 3), None);
    }
}
