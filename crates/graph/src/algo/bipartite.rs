//! Bipartiteness with two-sided certificates.
//!
//! `G ∈ G(2-col)` — the yes-instances of the paper's central language — iff
//! [`bipartition`] returns `Ok`. On failure the returned odd cycle is the
//! witness that strong soundness checkers look for in accepting subgraphs.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Either a proper 2-coloring (sides `0`/`1`; isolated and unreachable
/// nodes get side `0`) or an odd cycle as a node sequence
/// `v_0, v_1, …, v_{2k}` with consecutive nodes (and last-to-first)
/// adjacent.
pub fn bipartition(g: &Graph) -> Result<Vec<u8>, Vec<usize>> {
    let n = g.node_count();
    let mut side = vec![u8::MAX; n];
    let mut parent = vec![usize::MAX; n];
    for start in g.nodes() {
        if side[start] != u8::MAX {
            continue;
        }
        side[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if side[u] == u8::MAX {
                    side[u] = side[v] ^ 1;
                    parent[u] = v;
                    queue.push_back(u);
                } else if side[u] == side[v] {
                    return Err(odd_cycle_from_conflict(&parent, v, u));
                }
            }
        }
    }
    Ok(side)
}

/// Whether the graph is bipartite.
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_ok()
}

/// Reconstructs an odd cycle from a BFS-tree conflict edge `{v, u}` where
/// both endpoints have the same side.
fn odd_cycle_from_conflict(parent: &[usize], v: usize, u: usize) -> Vec<usize> {
    // Walk both nodes up to their lowest common ancestor.
    let path_to_root = |mut x: usize| {
        let mut path = vec![x];
        while parent[x] != usize::MAX {
            x = parent[x];
            path.push(x);
        }
        path
    };
    let pv = path_to_root(v);
    let pu = path_to_root(u);
    // Find LCA: deepest common node. Paths end at the same root.
    let mut i = pv.len();
    let mut j = pu.len();
    while i > 0 && j > 0 && pv[i - 1] == pu[j - 1] {
        i -= 1;
        j -= 1;
    }
    // Cycle: v .. lca .. u (reversed), then the edge u-v closes it.
    let mut cycle: Vec<usize> = pv[..=i].to_vec();
    cycle.extend(pu[..j].iter().rev());
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn assert_valid_odd_cycle(g: &Graph, cycle: &[usize]) {
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.len() % 2, 1, "cycle {cycle:?} is not odd");
        for i in 0..cycle.len() {
            let a = cycle[i];
            let b = cycle[(i + 1) % cycle.len()];
            assert!(g.has_edge(a, b), "{a}-{b} missing in odd cycle {cycle:?}");
        }
        let mut dedup = cycle.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), cycle.len(), "cycle {cycle:?} repeats a node");
    }

    #[test]
    fn even_structures_are_bipartite() {
        for g in [
            generators::cycle(6),
            generators::path(7),
            generators::grid(3, 4),
            generators::complete_bipartite(3, 4),
            generators::hypercube(3),
            generators::star(5),
        ] {
            let side = bipartition(&g).expect("bipartite");
            for (u, v) in g.edges() {
                assert_ne!(side[u], side[v]);
            }
        }
    }

    #[test]
    fn odd_cycles_are_certified() {
        for g in [
            generators::cycle(3),
            generators::cycle(7),
            generators::complete(4),
            generators::petersen(),
            generators::watermelon(&[2, 3]),
        ] {
            let cycle = bipartition(&g).expect_err("non-bipartite");
            assert_valid_odd_cycle(&g, &cycle);
        }
    }

    #[test]
    fn disconnected_graphs() {
        let good = generators::path(3).disjoint_union(&generators::cycle(4));
        assert!(is_bipartite(&good));
        let bad = generators::path(3).disjoint_union(&generators::cycle(5));
        let cycle = bipartition(&bad).expect_err("odd component");
        assert_valid_odd_cycle(&bad, &cycle);
        assert!(cycle.iter().all(|&v| v >= 3), "cycle lies in C5 component");
    }

    #[test]
    fn empty_and_trivial() {
        assert!(is_bipartite(&Graph::new(0)));
        assert!(is_bipartite(&Graph::new(5)));
    }
}
