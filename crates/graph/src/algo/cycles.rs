//! Cycle structure: girth, cycle-space dimension, cycle finding.
//!
//! Lemma 5.5 of the paper needs, inside a yes-instance, "a cycle C in the
//! same component as v" after deleting an edge, and Theorem 1.5 assumes the
//! instances contain "more than one cycle" — i.e. cycle-space dimension at
//! least 2. These routines provide those ingredients.

use crate::algo::components::connected_components;
use crate::graph::Graph;
use std::collections::VecDeque;

/// The dimension of the cycle space: `m − n + c` where `c` is the number of
/// connected components. Zero exactly for forests.
pub fn cycle_space_dimension(g: &Graph) -> usize {
    g.edge_count() + connected_components(g).len() - g.node_count()
}

/// Whether `g` contains at least two (independent) cycles.
pub fn has_two_independent_cycles(g: &Graph) -> bool {
    cycle_space_dimension(g) >= 2
}

/// The girth (length of a shortest cycle), or `None` for forests.
pub fn girth(g: &Graph) -> Option<usize> {
    let mut best: Option<usize> = None;
    // For every start node, BFS; a non-tree edge at depths (d1, d2) closes
    // a cycle of length d1 + d2 + 1 through the root. The minimum over all
    // roots is the girth.
    for root in g.nodes() {
        let mut dist = vec![usize::MAX; g.node_count()];
        let mut parent = vec![usize::MAX; g.node_count()];
        dist[root] = 0;
        let mut queue = VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    parent[u] = v;
                    queue.push_back(u);
                } else if parent[v] != u {
                    let len = dist[v] + dist[u] + 1;
                    if best.is_none_or(|b| len < b) {
                        best = Some(len);
                    }
                }
            }
        }
    }
    best
}

/// Some cycle in the component of `start`, as a node sequence without the
/// closing repetition, or `None` if that component is a tree.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn cycle_in_component_of(g: &Graph, start: usize) -> Option<Vec<usize>> {
    assert!(start < g.node_count(), "node {start} out of range");
    // BFS from `start`; the first non-tree edge found closes a cycle.
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut parent = vec![usize::MAX; g.node_count()];
    dist[start] = 0;
    let mut queue = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                parent[u] = v;
                queue.push_back(u);
            } else if parent[v] != u && parent[u] != v {
                return Some(close_cycle(&parent, v, u));
            }
        }
    }
    None
}

/// Builds the cycle closed by non-tree edge `{v, u}` from BFS parents.
fn close_cycle(parent: &[usize], v: usize, u: usize) -> Vec<usize> {
    let path_to_root = |mut x: usize| {
        let mut path = vec![x];
        while parent[x] != usize::MAX {
            x = parent[x];
            path.push(x);
        }
        path
    };
    let pv = path_to_root(v);
    let pu = path_to_root(u);
    let mut i = pv.len();
    let mut j = pu.len();
    while i > 0 && j > 0 && pv[i - 1] == pu[j - 1] {
        i -= 1;
        j -= 1;
    }
    let mut cycle: Vec<usize> = pv[..=i].to_vec();
    cycle.extend(pu[..j].iter().rev());
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycle_space() {
        assert_eq!(cycle_space_dimension(&generators::path(5)), 0);
        assert_eq!(cycle_space_dimension(&generators::cycle(5)), 1);
        assert_eq!(cycle_space_dimension(&generators::theta(2, 2, 2)), 2);
        assert_eq!(cycle_space_dimension(&generators::complete(4)), 3);
        assert!(!has_two_independent_cycles(&generators::cycle(8)));
        assert!(has_two_independent_cycles(&generators::grid(3, 3)));
    }

    #[test]
    fn girths() {
        assert_eq!(girth(&generators::path(6)), None);
        assert_eq!(girth(&generators::cycle(7)), Some(7));
        assert_eq!(girth(&generators::complete(4)), Some(3));
        assert_eq!(girth(&generators::petersen()), Some(5));
        assert_eq!(girth(&generators::grid(3, 3)), Some(4));
        assert_eq!(girth(&generators::theta(2, 2, 4)), Some(4));
    }

    #[test]
    fn finds_cycles_in_the_right_component() {
        let g = generators::path(3).disjoint_union(&generators::cycle(4));
        assert_eq!(cycle_in_component_of(&g, 0), None);
        let cycle = cycle_in_component_of(&g, 4).expect("C4 component has a cycle");
        assert!(cycle.len() >= 3);
        for i in 0..cycle.len() {
            assert!(g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
        let mut dedup = cycle.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), cycle.len());
    }

    #[test]
    fn tree_has_no_cycle() {
        assert_eq!(cycle_in_component_of(&generators::star(4), 0), None);
        assert_eq!(
            cycle_in_component_of(&generators::balanced_tree(2, 3), 5),
            None
        );
    }
}
