//! Connected components.

use crate::graph::Graph;
use std::collections::VecDeque;

/// The connected components, each a sorted node list; components are
/// ordered by their smallest node.
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let mut seen = vec![false; g.node_count()];
    let mut comps = Vec::new();
    for start in g.nodes() {
        if seen[start] {
            continue;
        }
        let mut comp = vec![start];
        seen[start] = true;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    comp.push(u);
                    queue.push_back(u);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Whether the graph is connected (the empty graph is considered
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).len() <= 1
}

/// The component containing `v`, sorted.
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn component_of(g: &Graph, v: usize) -> Vec<usize> {
    assert!(v < g.node_count(), "node {v} out of range");
    connected_components(g)
        .into_iter()
        .find(|c| c.binary_search(&v).is_ok())
        .expect("every node lies in a component")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_component() {
        let comps = connected_components(&generators::cycle(5));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2, 3, 4]);
        assert!(is_connected(&generators::cycle(5)));
    }

    #[test]
    fn multiple_components() {
        let g = generators::path(3).disjoint_union(&generators::complete(2));
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4]]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = Graph::new(3);
        assert_eq!(connected_components(&g).len(), 3);
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
    }

    #[test]
    fn component_of_node() {
        let g = generators::path(2).disjoint_union(&generators::path(3));
        assert_eq!(component_of(&g, 3), vec![2, 3, 4]);
        assert_eq!(component_of(&g, 0), vec![0, 1]);
    }
}
