//! Shortest paths and shortest *non-backtracking* walks.
//!
//! A walk is non-backtracking if it never immediately reverses an edge.
//! The walk manipulations of Section 5.2 of the paper (Lemmas 5.4 and 5.5)
//! construct closed non-backtracking walks through prescribed nodes, which
//! reduces to shortest-path search in the *line digraph*: states are
//! directed edges `(u → v)` with transitions `(u → v) ⇝ (v → w)` for
//! `w ≠ u`. Parity-annotated states additionally track walk length mod 2,
//! which lets callers demand odd or even connecting walks.

use crate::graph::Graph;
use std::collections::VecDeque;

/// A shortest path from `u` to `v` as a node sequence (inclusive), or
/// `None` if disconnected.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range.
pub fn shortest_path(g: &Graph, u: usize, v: usize) -> Option<Vec<usize>> {
    shortest_path_avoiding(g, u, v, &[])
}

/// A shortest path from `u` to `v` whose *internal* nodes avoid `banned`
/// (endpoints are allowed to appear in `banned`), or `None`.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range.
pub fn shortest_path_avoiding(
    g: &Graph,
    u: usize,
    v: usize,
    banned: &[usize],
) -> Option<Vec<usize>> {
    let n = g.node_count();
    assert!(u < n && v < n, "endpoint out of range");
    if u == v {
        return Some(vec![u]);
    }
    let mut blocked = vec![false; n];
    for &b in banned {
        blocked[b] = true;
    }
    blocked[u] = false;
    blocked[v] = false;
    let mut parent = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    seen[u] = true;
    let mut queue = VecDeque::from([u]);
    while let Some(x) = queue.pop_front() {
        for &y in g.neighbors(x) {
            if seen[y] || blocked[y] {
                continue;
            }
            seen[y] = true;
            parent[y] = x;
            if y == v {
                let mut path = vec![v];
                let mut cur = v;
                while parent[cur] != usize::MAX {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(y);
        }
    }
    None
}

/// Required parity of a walk length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parity {
    /// Any length.
    Any,
    /// Even length.
    Even,
    /// Odd length.
    Odd,
}

impl Parity {
    fn admits(self, len: usize) -> bool {
        match self {
            Parity::Any => true,
            Parity::Even => len.is_multiple_of(2),
            Parity::Odd => len % 2 == 1,
        }
    }
}

/// A shortest non-backtracking walk that *starts with the directed edge*
/// `first = (a, b)`, ends at `target`, and has total length (edge count)
/// of the requested parity. Returns the walk as a node sequence starting
/// `a, b, …, target`, or `None` if no such walk exists.
///
/// The walk may revisit nodes (it is a walk, not a path) but never
/// immediately reverses an edge — exactly the "non-backtracking" condition
/// of Section 5.2.
///
/// # Panics
///
/// Panics if `first` is not an edge of `g` or `target` is out of range.
pub fn nb_walk_from_edge(
    g: &Graph,
    first: (usize, usize),
    target: usize,
    parity: Parity,
) -> Option<Vec<usize>> {
    let (a, b) = first;
    assert!(g.has_edge(a, b), "({a}, {b}) is not an edge");
    assert!(target < g.node_count(), "target {target} out of range");
    if b == target && parity.admits(1) {
        return Some(vec![a, b]);
    }
    // BFS over states (directed edge index, parity of length so far).
    // Directed edge (u, v) is encoded as (u, port index of v in adj(u)).
    let n = g.node_count();
    let offsets: Vec<usize> = {
        let mut acc = 0;
        let mut out = Vec::with_capacity(n + 1);
        out.push(0);
        for v in g.nodes() {
            acc += g.degree(v);
            out.push(acc);
        }
        out
    };
    let encode = |u: usize, v: usize| -> usize {
        let pos = g
            .neighbors(u)
            .binary_search(&v)
            .expect("directed edge endpoints adjacent");
        2 * (offsets[u] + pos)
    };
    let state_count = 2 * offsets[n];
    let mut prev = vec![usize::MAX; state_count];
    let start = encode(a, b) + 1; // length 1 => parity 1
    prev[start] = start; // sentinel: start points at itself
    let mut queue = VecDeque::from([start]);
    let decode_head = |state: usize| -> (usize, usize) {
        let edge = state / 2;
        // Find u with offsets[u] <= edge < offsets[u + 1].
        let u = offsets.partition_point(|&o| o <= edge) - 1;
        let v = g.neighbors(u)[edge - offsets[u]];
        (u, v)
    };
    let mut goal = None;
    'bfs: while let Some(state) = queue.pop_front() {
        let (u, v) = decode_head(state);
        let par = state & 1;
        if v == target && parity.admits(par) {
            goal = Some(state);
            break 'bfs;
        }
        for &w in g.neighbors(v) {
            if w == u {
                continue; // backtracking
            }
            let next = encode(v, w) ^ (state & 1) ^ 1;
            if prev[next] == usize::MAX {
                prev[next] = state;
                queue.push_back(next);
            }
        }
    }
    let goal = goal?;
    // Reconstruct.
    let mut walk_rev = Vec::new();
    let mut state = goal;
    loop {
        let (u, v) = decode_head(state);
        walk_rev.push(v);
        if state == start {
            walk_rev.push(u);
            break;
        }
        state = prev[state];
    }
    walk_rev.reverse();
    Some(walk_rev)
}

/// A shortest non-backtracking walk that starts with the directed edge
/// `first` and **ends by traversing the directed edge** `last`, with total
/// length of the requested parity. Returns the node sequence, or `None`.
///
/// This is the primitive behind the closed-walk constructions of
/// Lemma 5.4: to close a walk at `u` without backtracking, route to the
/// directed edge `(y, u)` for a suitable neighbor `y`.
///
/// # Panics
///
/// Panics if `first` or `last` is not an edge of `g`.
pub fn nb_walk_from_edge_to_edge(
    g: &Graph,
    first: (usize, usize),
    last: (usize, usize),
    parity: Parity,
) -> Option<Vec<usize>> {
    let (a, b) = first;
    let (y, t) = last;
    assert!(g.has_edge(a, b), "({a}, {b}) is not an edge");
    assert!(g.has_edge(y, t), "({y}, {t}) is not an edge");
    if (a, b) == (y, t) && parity.admits(1) {
        return Some(vec![a, b]);
    }
    // Reuse nb_walk_from_edge's search by BFS over (directed edge, parity)
    // states with the goal being the exact state (y -> t).
    let n = g.node_count();
    let offsets: Vec<usize> = {
        let mut acc = 0;
        let mut out = Vec::with_capacity(n + 1);
        out.push(0);
        for v in g.nodes() {
            acc += g.degree(v);
            out.push(acc);
        }
        out
    };
    let encode = |u: usize, v: usize| -> usize {
        let pos = g
            .neighbors(u)
            .binary_search(&v)
            .expect("directed edge endpoints adjacent");
        2 * (offsets[u] + pos)
    };
    let state_count = 2 * offsets[n];
    let mut prev = vec![usize::MAX; state_count];
    let start = encode(a, b) + 1;
    prev[start] = start;
    let mut queue = std::collections::VecDeque::from([start]);
    let decode_head = |state: usize| -> (usize, usize) {
        let edge = state / 2;
        let u = offsets.partition_point(|&o| o <= edge) - 1;
        let v = g.neighbors(u)[edge - offsets[u]];
        (u, v)
    };
    let goal_edge = encode(y, t);
    let mut goal = None;
    'bfs: while let Some(state) = queue.pop_front() {
        if state & !1 == goal_edge && parity.admits(state & 1) {
            goal = Some(state);
            break 'bfs;
        }
        let (u, v) = decode_head(state);
        for &w in g.neighbors(v) {
            if w == u {
                continue;
            }
            let next = encode(v, w) ^ (state & 1) ^ 1;
            if prev[next] == usize::MAX {
                prev[next] = state;
                queue.push_back(next);
            }
        }
    }
    let goal = goal?;
    let mut walk_rev = Vec::new();
    let mut state = goal;
    loop {
        let (u, v) = decode_head(state);
        walk_rev.push(v);
        if state == start {
            walk_rev.push(u);
            break;
        }
        state = prev[state];
    }
    walk_rev.reverse();
    Some(walk_rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn assert_nb_walk(g: &Graph, walk: &[usize]) {
        assert!(walk.len() >= 2);
        for w in walk.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "missing edge {w:?}");
        }
        for w in walk.windows(3) {
            assert_ne!(w[0], w[2], "backtracking at {w:?}");
        }
    }

    #[test]
    fn shortest_paths() {
        let g = generators::grid(3, 3);
        let p = shortest_path(&g, 0, 8).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], 0);
        assert_eq!(p[4], 8);
        assert_eq!(shortest_path(&g, 4, 4), Some(vec![4]));
    }

    #[test]
    fn shortest_path_respects_bans() {
        // C6: going from 0 to 3 avoiding 1 and 2 must go the long way.
        let c = generators::cycle(6);
        let p = shortest_path_avoiding(&c, 0, 3, &[1, 2]).unwrap();
        assert_eq!(p, vec![0, 5, 4, 3]);
        assert_eq!(shortest_path_avoiding(&c, 0, 3, &[1, 5]), None);
        // Banned endpoints are ignored.
        assert!(shortest_path_avoiding(&c, 0, 3, &[0, 3, 2]).is_some());
    }

    #[test]
    fn disconnected_path_is_none() {
        let g = generators::path(2).disjoint_union(&generators::path(2));
        assert_eq!(shortest_path(&g, 0, 3), None);
    }

    #[test]
    fn nb_walk_basic() {
        let c = generators::cycle(5);
        // Start 0 -> 1, reach 0 again: must go all the way around.
        let w = nb_walk_from_edge(&c, (0, 1), 0, Parity::Any).unwrap();
        assert_eq!(w, vec![0, 1, 2, 3, 4, 0]);
        assert_nb_walk(&c, &w);
    }

    #[test]
    fn nb_walk_parity() {
        let g = generators::theta(2, 2, 3);
        // Theta(2,2,3) contains both even and odd closed walks.
        for parity in [Parity::Even, Parity::Odd] {
            let w = nb_walk_from_edge(&g, (0, g.neighbors(0)[0]), 0, parity).unwrap();
            assert_nb_walk(&g, &w);
            let expected_even = matches!(parity, Parity::Even);
            assert_eq!((w.len() - 1).is_multiple_of(2), expected_even);
            assert_eq!(*w.last().unwrap(), 0);
        }
    }

    #[test]
    fn nb_walk_impossible_in_tree() {
        // In a star, any non-backtracking walk from the center dead-ends at
        // a leaf; it can never return to the center.
        let s = generators::star(3);
        assert_eq!(nb_walk_from_edge(&s, (0, 1), 0, Parity::Any), None);
    }

    #[test]
    fn nb_walk_odd_impossible_in_bipartite() {
        let c = generators::cycle(6);
        assert!(nb_walk_from_edge(&c, (0, 1), 0, Parity::Even).is_some());
        assert_eq!(nb_walk_from_edge(&c, (0, 1), 0, Parity::Odd), None);
    }

    #[test]
    fn nb_walk_to_edge_controls_the_arrival_direction() {
        // Close a walk at node 0 of a theta graph arriving via a
        // prescribed neighbor.
        let g = generators::theta(2, 2, 3);
        let first = (0usize, g.neighbors(0)[0]);
        for &y in &g.neighbors(0)[1..] {
            let w = nb_walk_from_edge_to_edge(&g, first, (y, 0), Parity::Any)
                .expect("theta is rich enough");
            assert_nb_walk(&g, &w);
            assert_eq!(w[0], 0);
            assert_eq!(*w.last().unwrap(), 0);
            assert_eq!(w[w.len() - 2], y, "arrives through y");
        }
    }

    #[test]
    fn nb_walk_to_edge_degenerate_single_step() {
        let p = generators::path(3);
        assert_eq!(
            nb_walk_from_edge_to_edge(&p, (0, 1), (0, 1), Parity::Odd),
            Some(vec![0, 1])
        );
        assert_eq!(
            nb_walk_from_edge_to_edge(&p, (0, 1), (1, 0), Parity::Any),
            None,
            "cannot reverse immediately in a path"
        );
    }

    #[test]
    fn nb_walk_to_edge_parity() {
        let g = generators::theta(2, 2, 3);
        let first = (0usize, g.neighbors(0)[0]);
        let y = g.neighbors(0)[1];
        for parity in [Parity::Even, Parity::Odd] {
            let w = nb_walk_from_edge_to_edge(&g, first, (y, 0), parity).expect("both parities");
            let expected_even = matches!(parity, Parity::Even);
            assert_eq!((w.len() - 1).is_multiple_of(2), expected_even);
        }
    }

    #[test]
    fn nb_walk_length_one() {
        let p = generators::path(3);
        assert_eq!(
            nb_walk_from_edge(&p, (0, 1), 1, Parity::Odd),
            Some(vec![0, 1])
        );
        assert_eq!(nb_walk_from_edge(&p, (0, 1), 1, Parity::Even), None);
    }
}
