//! Breadth-first search: distances, balls, eccentricities, diameter.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Marker for unreachable nodes in distance vectors.
pub const UNREACHABLE: usize = usize::MAX;

/// BFS distances from `src`; unreachable nodes get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn distances(g: &Graph, src: usize) -> Vec<usize> {
    assert!(src < g.node_count(), "source {src} out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    dist[src] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if dist[u] == UNREACHABLE {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The distance between `u` and `v`, or `None` if disconnected.
pub fn distance(g: &Graph, u: usize, v: usize) -> Option<usize> {
    let d = distances(g, u)[v];
    (d != UNREACHABLE).then_some(d)
}

/// The ball `N^r(v)`: all nodes at distance at most `r` from `v`, sorted.
pub fn ball(g: &Graph, v: usize, r: usize) -> Vec<usize> {
    let dist = distances(g, v);
    let mut nodes: Vec<usize> = g.nodes().filter(|&u| dist[u] <= r).collect();
    nodes.sort_unstable();
    nodes
}

/// All-pairs distances as a matrix (`n` BFS runs).
pub fn all_pairs(g: &Graph) -> Vec<Vec<usize>> {
    g.nodes().map(|v| distances(g, v)).collect()
}

/// The eccentricity of `v`, or `None` if some node is unreachable from `v`.
pub fn eccentricity(g: &Graph, v: usize) -> Option<usize> {
    let dist = distances(g, v);
    let max = dist.iter().copied().max().unwrap_or(0);
    (max != UNREACHABLE).then_some(max)
}

/// The diameter, or `None` if the graph is disconnected or empty.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    g.nodes()
        .map(|v| eccentricity(g, v))
        .collect::<Option<Vec<_>>>()
        .map(|e| e.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_distances() {
        let p = generators::path(5);
        assert_eq!(distances(&p, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(distances(&p, 2), vec![2, 1, 0, 1, 2]);
        assert_eq!(distance(&p, 0, 4), Some(4));
    }

    #[test]
    fn disconnected_distances() {
        let g = generators::path(2).disjoint_union(&generators::path(2));
        assert_eq!(distance(&g, 0, 3), None);
        assert_eq!(distances(&g, 0)[2], UNREACHABLE);
        assert_eq!(eccentricity(&g, 0), None);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn balls() {
        let c = generators::cycle(6);
        assert_eq!(ball(&c, 0, 0), vec![0]);
        assert_eq!(ball(&c, 0, 1), vec![0, 1, 5]);
        assert_eq!(ball(&c, 0, 2), vec![0, 1, 2, 4, 5]);
        assert_eq!(ball(&c, 0, 3).len(), 6);
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(4)), Some(1));
        assert_eq!(diameter(&generators::grid(3, 3)), Some(4));
        assert_eq!(diameter(&generators::petersen()), Some(2));
        assert_eq!(diameter(&Graph::new(0)), None);
        assert_eq!(diameter(&Graph::new(1)), Some(0));
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = generators::grid(2, 3);
        let d = all_pairs(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(d[u][v], d[v][u]);
            }
        }
    }
}
