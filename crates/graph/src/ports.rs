//! Port assignments `prt : V × E → [Δ(G)]` (paper, Section 2.2).
//!
//! A port assignment gives every node a private numbering `1..=d(v)` of its
//! incident edges. One-round LCPs such as the even-cycle construction of
//! Lemma 4.2 certify *edges* by naming the pair of ports
//! `prt(u, e) prt(v, e)` that identifies the edge at both of its endpoints.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A port assignment for a fixed graph.
///
/// Internally, `order[v]` lists the neighbors of `v`; the neighbor stored at
/// position `p - 1` is reached through port `p`.
///
/// # Example
///
/// ```
/// use hiding_lcp_graph::{generators, PortAssignment};
///
/// let c4 = generators::cycle(4);
/// let prt = PortAssignment::canonical(&c4);
/// // Node 0 of a cycle has neighbors 1 and 3; canonical ports number them
/// // in sorted order.
/// assert_eq!(prt.neighbor_at(0, 1), 1);
/// assert_eq!(prt.neighbor_at(0, 2), 3);
/// assert_eq!(prt.port_to(0, 3), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortAssignment {
    order: Vec<Vec<usize>>,
}

impl PortAssignment {
    /// The canonical port assignment: each node numbers its neighbors in
    /// increasing order of node index.
    pub fn canonical(g: &Graph) -> Self {
        PortAssignment {
            order: g.nodes().map(|v| g.neighbors(v).to_vec()).collect(),
        }
    }

    /// A uniformly random port assignment.
    pub fn random<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Self {
        let mut order: Vec<Vec<usize>> = g.nodes().map(|v| g.neighbors(v).to_vec()).collect();
        for nbrs in &mut order {
            nbrs.shuffle(rng);
        }
        PortAssignment { order }
    }

    /// Builds a port assignment from explicit per-node neighbor orderings.
    ///
    /// Returns `None` if `order` is not a valid port assignment for `g`
    /// (wrong arity, unknown neighbor, or repeated neighbor).
    pub fn from_order(g: &Graph, order: Vec<Vec<usize>>) -> Option<Self> {
        if order.len() != g.node_count() {
            return None;
        }
        for v in g.nodes() {
            if order[v].len() != g.degree(v) {
                return None;
            }
            let mut seen = order[v].clone();
            seen.sort_unstable();
            if seen != g.neighbors(v) {
                return None;
            }
        }
        Some(PortAssignment { order })
    }

    /// The number of nodes this assignment covers.
    pub fn node_count(&self) -> usize {
        self.order.len()
    }

    /// The neighbor of `v` reached through port `p` (ports are 1-based, as
    /// in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `p` is not in `1..=d(v)`.
    pub fn neighbor_at(&self, v: usize, p: u16) -> usize {
        self.order[v][usize::from(p) - 1]
    }

    /// The port through which `v` reaches its neighbor `u`, i.e.
    /// `prt(v, {v, u})`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a neighbor of `v`.
    pub fn port_to(&self, v: usize, u: usize) -> u16 {
        let pos = self.order[v]
            .iter()
            .position(|&w| w == u)
            .unwrap_or_else(|| panic!("{u} is not a neighbor of {v}"));
        u16::try_from(pos + 1).expect("degrees fit in u16")
    }

    /// The degree of `v` according to this assignment.
    pub fn degree(&self, v: usize) -> usize {
        self.order[v].len()
    }

    /// Checks validity against `g`: ports `1..=d(v)` are a bijection onto
    /// the neighbors of `v` (conditions (1) and (2) of Section 2.2).
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        Self::from_order(g, self.order.clone()).is_some()
    }

    /// Restricts the assignment to an induced subgraph described by
    /// `old_of_new` (the map returned by [`Graph::induced`]), dropping ports
    /// of edges that leave the subgraph and renumbering the surviving ports
    /// `1..` in their original relative order.
    ///
    /// This implements `prt|_{N^r(v)}` for view construction: the *relative*
    /// order of surviving ports is preserved, which is all a view can
    /// canonically rely on.
    pub fn restrict(&self, sub: &Graph, old_of_new: &[usize]) -> PortAssignment {
        let mut new_of_old = vec![usize::MAX; self.order.len()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old] = new;
        }
        let order = old_of_new
            .iter()
            .enumerate()
            .map(|(new_v, &old_v)| {
                self.order[old_v]
                    .iter()
                    .map(|&old_u| new_of_old[old_u])
                    .filter(|&new_u| new_u != usize::MAX && sub.has_edge(new_v, new_u))
                    .collect()
            })
            .collect();
        PortAssignment { order }
    }
}

/// All port assignments of `g` — the full quantifier of the paper's
/// Lemma 3.1. There are `∏_v d(v)!` of them.
///
/// # Panics
///
/// Panics if the count would exceed `limit` (guard against accidental
/// explosions; pass `usize::MAX` to disable).
pub fn all_port_assignments(g: &Graph, limit: usize) -> Vec<PortAssignment> {
    let mut count: usize = 1;
    for v in g.nodes() {
        let fact: usize = (1..=g.degree(v)).product();
        count = count.saturating_mul(fact);
        assert!(
            count <= limit,
            "graph admits more than {limit} port assignments"
        );
    }
    // Per-node permutations, combined by odometer.
    let per_node: Vec<Vec<Vec<usize>>> = g.nodes().map(|v| permutations(g.neighbors(v))).collect();
    let mut indices = vec![0usize; g.node_count()];
    let mut out = Vec::with_capacity(count);
    loop {
        let order: Vec<Vec<usize>> = indices
            .iter()
            .enumerate()
            .map(|(v, &i)| per_node[v][i].clone())
            .collect();
        out.push(PortAssignment { order });
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == indices.len() {
                return out;
            }
            indices[pos] += 1;
            if indices[pos] < per_node[pos].len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

/// The rotation-symmetric port assignment of the cycle `0-1-…-(n-1)-0`:
/// every node reaches its successor through port 1 and its predecessor
/// through port 2. Useful for building the paper's symmetric cycle
/// instances (Fig. 5).
///
/// # Panics
///
/// Panics if `g` is not the canonical cycle produced by
/// [`crate::generators::cycle`].
pub fn cycle_symmetric(g: &Graph) -> PortAssignment {
    let n = g.node_count();
    assert!(n >= 3 && g.edge_count() == n, "expects a canonical cycle");
    let order: Vec<Vec<usize>> = (0..n).map(|v| vec![(v + 1) % n, (v + n - 1) % n]).collect();
    PortAssignment::from_order(g, order).expect("canonical cycle adjacency")
}

/// The circulant port assignment of the complete graph `K_n`: node `v`
/// reaches `(v + p) mod n` through port `p = 1..n-1`. Every rotation
/// `v ↦ v + r` is then port-preserving, so the instance's automorphism
/// group is (exactly) the cyclic group of order `n` — a translation is
/// forced because `π(v + c) = π(v) + c` must hold for every offset.
///
/// # Panics
///
/// Panics if `g` is not the canonical complete graph produced by
/// [`crate::generators::complete`].
pub fn complete_symmetric(g: &Graph) -> PortAssignment {
    let n = g.node_count();
    assert!(
        n >= 2 && g.edge_count() == n * (n - 1) / 2,
        "expects a canonical complete graph"
    );
    let order: Vec<Vec<usize>> = (0..n)
        .map(|v| (0..n - 1).map(|p| (v + p + 1) % n).collect())
        .collect();
    PortAssignment::from_order(g, order).expect("complete-graph adjacency")
}

/// The XOR port assignment of the hypercube `Q_d`: node `v` reaches
/// `v ^ (1 << (p-1))` through port `p = 1..=d`. Every translation `v ↦ v ^ u` is then
/// port-preserving, and conversely `π(v ^ e_p) = π(v) ^ e_p` forces
/// `π(v) = π(0) ^ v`, so the group is exactly `(Z_2)^d` of order `2^d`.
///
/// # Panics
///
/// Panics if `g` is not the canonical hypercube produced by
/// [`crate::generators::hypercube`].
pub fn hypercube_symmetric(g: &Graph) -> PortAssignment {
    let n = g.node_count();
    let d = n.trailing_zeros() as usize;
    assert!(
        n >= 2 && n == 1 << d && g.edge_count() == n / 2 * d,
        "expects a canonical hypercube"
    );
    let order: Vec<Vec<usize>> = (0..n)
        .map(|v| (0..d).map(|p| v ^ (1 << p)).collect())
        .collect();
    PortAssignment::from_order(g, order).expect("hypercube adjacency")
}

/// The shift-symmetric port assignment of the balanced complete
/// bipartite graph `K_{a,a}` (parts `0..a` and `a..2a`): left node `i`
/// reaches `a + ((i + p - 1) mod a)` through port `p = 1..=a`, right node
/// `a + j` reaches `(j + p - 1) mod a`. The simultaneous shift `(i, a+j) ↦
/// (i+1, a+j+1)` and the part swap `i ↔ a+i` are both port-preserving,
/// so the group has order at least `2a`.
///
/// # Panics
///
/// Panics if `g` is not the canonical `K_{a,a}` produced by
/// [`crate::generators::complete_bipartite`] with equal part sizes.
pub fn balanced_bipartite_symmetric(g: &Graph) -> PortAssignment {
    let n = g.node_count();
    let a = n / 2;
    assert!(
        a >= 1 && n == 2 * a && g.edge_count() == a * a && g.degree(0) == a,
        "expects a canonical balanced complete bipartite graph"
    );
    let order: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            if v < a {
                (0..a).map(|p| a + (v + p) % a).collect()
            } else {
                (0..a).map(|p| (v - a + p) % a).collect()
            }
        })
        .collect();
    PortAssignment::from_order(g, order).expect("balanced bipartite adjacency")
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_assignments_counts() {
        assert_eq!(all_port_assignments(&generators::path(3), 100).len(), 2);
        assert_eq!(all_port_assignments(&generators::cycle(4), 100).len(), 16);
        assert_eq!(all_port_assignments(&generators::star(3), 100).len(), 6);
        // All distinct and valid.
        let g = generators::cycle(4);
        let all = all_port_assignments(&g, 100);
        for p in &all {
            assert!(p.is_valid_for(&g));
        }
        let mut dedup = all.clone();
        dedup.sort_by_key(|p| format!("{p:?}"));
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn all_assignments_guard() {
        let _ = all_port_assignments(&generators::complete(5), 100);
    }

    #[test]
    fn symmetric_cycle_ports() {
        let g = generators::cycle(5);
        let prt = cycle_symmetric(&g);
        assert!(prt.is_valid_for(&g));
        for v in 0..5 {
            assert_eq!(prt.neighbor_at(v, 1), (v + 1) % 5);
            assert_eq!(prt.neighbor_at(v, 2), (v + 4) % 5);
        }
    }

    #[test]
    fn symmetric_assignments_realize_their_groups() {
        use crate::algo::automorphism::port_automorphisms;
        let cases: [(Graph, PortAssignment, usize); 3] = [
            {
                let g = generators::complete(5);
                let prt = complete_symmetric(&g);
                (g, prt, 5)
            },
            {
                let g = generators::hypercube(3);
                let prt = hypercube_symmetric(&g);
                (g, prt, 8)
            },
            {
                let g = generators::complete_bipartite(4, 4);
                let prt = balanced_bipartite_symmetric(&g);
                (g, prt, 8)
            },
        ];
        for (g, prt, order) in &cases {
            assert!(prt.is_valid_for(g));
            let group = port_automorphisms(g, prt, 4096).expect("small groups");
            assert!(
                group.len() >= *order,
                "expected a group of order >= {order}, found {}",
                group.len()
            );
        }
    }

    #[test]
    fn canonical_is_valid() {
        let g = generators::complete(5);
        let prt = PortAssignment::canonical(&g);
        assert!(prt.is_valid_for(&g));
        for v in g.nodes() {
            for p in 1..=g.degree(v) as u16 {
                let u = prt.neighbor_at(v, p);
                assert_eq!(prt.port_to(v, u), p);
            }
        }
    }

    #[test]
    fn random_is_valid_and_varies() {
        let g = generators::complete(6);
        let mut rng = StdRng::seed_from_u64(7);
        let a = PortAssignment::random(&g, &mut rng);
        let b = PortAssignment::random(&g, &mut rng);
        assert!(a.is_valid_for(&g));
        assert!(b.is_valid_for(&g));
        assert_ne!(a, b, "two random assignments on K6 should differ");
    }

    #[test]
    fn from_order_rejects_bad_assignments() {
        let g = generators::path(3); // edges 0-1, 1-2
        assert!(PortAssignment::from_order(&g, vec![vec![1], vec![0, 2], vec![1]]).is_some());
        // Wrong arity at node 1.
        assert!(PortAssignment::from_order(&g, vec![vec![1], vec![0], vec![1]]).is_none());
        // Repeated neighbor.
        assert!(PortAssignment::from_order(&g, vec![vec![1], vec![0, 0], vec![1]]).is_none());
        // Not a neighbor.
        assert!(PortAssignment::from_order(&g, vec![vec![2], vec![0, 2], vec![1]]).is_none());
        // Wrong length.
        assert!(PortAssignment::from_order(&g, vec![vec![1], vec![0, 2]]).is_none());
    }

    #[test]
    fn restrict_preserves_relative_order() {
        // Star with center 0 and leaves 1..=3; ports at 0 reversed: 3, 2, 1.
        let g = generators::star(3);
        let prt =
            PortAssignment::from_order(&g, vec![vec![3, 2, 1], vec![0], vec![0], vec![0]]).unwrap();
        // Keep center plus leaves 1 and 3.
        let (sub, map) = g.induced(&[0, 1, 3]);
        let sub_prt = prt.restrict(&sub, &map);
        assert!(sub_prt.is_valid_for(&sub));
        // Surviving neighbors of the center in original port order: 3 then 1.
        let new_of = |old: usize| map.iter().position(|&o| o == old).unwrap();
        assert_eq!(sub_prt.neighbor_at(new_of(0), 1), new_of(3));
        assert_eq!(sub_prt.neighbor_at(new_of(0), 2), new_of(1));
    }
}
