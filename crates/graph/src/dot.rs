//! Graphviz (DOT) export, used to regenerate the paper's figures.

use crate::graph::Graph;
use std::fmt::Write;

/// Renders `g` in DOT format. `labels`, if given, must have one entry per
/// node and is placed in each node's label alongside its index.
///
/// # Example
///
/// ```
/// use hiding_lcp_graph::{dot, generators};
/// let s = dot::to_dot(&generators::path(3), Some(&["a".into(), "b".into(), "c".into()]));
/// assert!(s.contains("graph {"));
/// assert!(s.contains("0 -- 1"));
/// ```
///
/// # Panics
///
/// Panics if `labels` is given with the wrong length.
pub fn to_dot(g: &Graph, labels: Option<&[String]>) -> String {
    if let Some(l) = labels {
        assert_eq!(l.len(), g.node_count(), "one label per node required");
    }
    let mut out = String::from("graph {\n");
    for v in g.nodes() {
        match labels {
            Some(l) => {
                let _ = writeln!(out, "  {v} [label=\"{}: {}\"];", v, escape(&l[v]));
            }
            None => {
                let _ = writeln!(out, "  {v};");
            }
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn renders_edges_and_labels() {
        let g = generators::cycle(3);
        let labels = vec!["x".to_string(), "y\"z".to_string(), "w".to_string()];
        let dot = to_dot(&g, Some(&labels));
        assert!(dot.contains("1 [label=\"1: y\\\"z\"];"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.contains("0 -- 2;"));
        assert!(dot.starts_with("graph {"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn renders_without_labels() {
        let dot = to_dot(&generators::path(2), None);
        assert!(dot.contains("  0;"));
        assert!(dot.contains("0 -- 1;"));
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn rejects_wrong_label_count() {
        let _ = to_dot(&generators::path(3), Some(&["a".into()]));
    }
}
