//! Random graph generators for property-based and adversarial testing.

use crate::graph::Graph;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v).expect("gnp edges are valid");
            }
        }
    }
    g
}

/// A random bipartite graph with parts `0..a` and `a..a+b`, each cross edge
/// present independently with probability `p`. Always a yes-instance of
/// 2-col.
pub fn random_bipartite<R: Rng + ?Sized>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v).expect("bipartite edges are valid");
            }
        }
    }
    g
}

/// Subdivides every edge of `base` into a path of a random *even* length in
/// `{2, 4}`. The result is always bipartite (every original odd cycle
/// becomes even) yet has the coarse shape of `base` — a convenient source
/// of structurally varied yes-instances with minimum degree ≥ δ(base).
pub fn random_even_subdivision<R: Rng + ?Sized>(base: &Graph, rng: &mut R) -> Graph {
    let mut g = Graph::new(base.node_count());
    for (u, v) in base.edges() {
        let segments = if rng.random_bool(0.5) { 2 } else { 4 };
        let mut prev = u;
        for _ in 0..(segments - 1) {
            let mid = g.add_isolated_nodes(1);
            g.add_edge(prev, mid).expect("subdivision edges are valid");
            prev = mid;
        }
        g.add_edge(prev, v).expect("subdivision edges are valid");
    }
    g
}

/// A random d-regular graph on `n` nodes via the configuration model with
/// rejection (retry until simple). Requires `n·d` even and `d < n`.
///
/// # Panics
///
/// Panics on infeasible parameters or if 1000 attempts all produce
/// multi-edges/loops (practically unreachable for the small sizes this
/// library targets).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d < n, "degree must be below n");
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    'attempt: for _ in 0..1000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        rand::seq::SliceRandom::shuffle(&mut stubs[..], rng);
        let mut g = Graph::new(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || g.has_edge(u, v) {
                continue 'attempt;
            }
            g.add_edge(u, v).expect("validated above");
        }
        return g;
    }
    panic!("failed to sample a simple {d}-regular graph on {n} nodes");
}

/// A random bipartite d-regular graph with parts `0..half` and
/// `half..2·half`, built from `d` random perfect matchings (retried until
/// they are pairwise disjoint). Always a yes-instance of 2-col; with
/// `d = 3` these are the random cubic bipartite workloads of the
/// edge-3-coloring experiments.
///
/// # Panics
///
/// Panics on `d > half` or after 1000 failed attempts.
pub fn random_bipartite_regular<R: Rng + ?Sized>(half: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d <= half, "degree must be at most the part size");
    'attempt: for _ in 0..1000 {
        let mut g = Graph::new(2 * half);
        for _ in 0..d {
            let mut perm: Vec<usize> = (0..half).collect();
            rand::seq::SliceRandom::shuffle(&mut perm[..], rng);
            for (i, &j) in perm.iter().enumerate() {
                if g.has_edge(i, half + j) {
                    continue 'attempt;
                }
                g.add_edge(i, half + j).expect("cross edges are valid");
            }
        }
        return g;
    }
    panic!("failed to sample a bipartite {d}-regular graph");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bipartite;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn random_bipartite_is_bipartite() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let g = random_bipartite(4, 5, 0.6, &mut rng);
            assert!(bipartite::bipartition(&g).is_ok());
        }
    }

    #[test]
    fn random_regular_degrees() {
        let mut rng = StdRng::seed_from_u64(4);
        for (n, d) in [(8usize, 3usize), (10, 4), (6, 1)] {
            let g = random_regular(n, d, &mut rng);
            assert_eq!(g.node_count(), n);
            for v in g.nodes() {
                assert_eq!(g.degree(v), d, "n={n} d={d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_rejects_odd_product() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = random_regular(5, 3, &mut rng);
    }

    #[test]
    fn random_bipartite_regular_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        for (half, d) in [(4usize, 3usize), (6, 2), (5, 1)] {
            let g = random_bipartite_regular(half, d, &mut rng);
            assert_eq!(g.node_count(), 2 * half);
            assert!(bipartite::is_bipartite(&g));
            for v in g.nodes() {
                assert_eq!(g.degree(v), d);
            }
            // All edges cross the parts.
            for (u, v) in g.edges() {
                assert!(u < half && v >= half);
            }
        }
    }

    #[test]
    fn even_subdivision_is_bipartite() {
        let mut rng = StdRng::seed_from_u64(3);
        for base in [generators::complete(4), generators::petersen()] {
            for _ in 0..10 {
                let g = random_even_subdivision(&base, &mut rng);
                assert!(bipartite::bipartition(&g).is_ok());
                assert!(g.min_degree().unwrap() >= 2);
            }
        }
    }
}
