//! Exhaustive enumeration of small connected graphs up to isomorphism.
//!
//! Lemma 3.1 of the paper computes the accepting neighborhood graph by
//! iterating "over all possible labeled yes-instances (G, prt, Id, ℓ) such
//! that G is of size at most n". This module supplies the graph part of
//! that iteration for small `n`.

use crate::algo::components;
use crate::canon;
use crate::graph::Graph;
use std::collections::HashSet;

/// All connected graphs on exactly `n` nodes, one representative per
/// isomorphism class, in a deterministic order.
///
/// Counts for `n = 1..=7`: 1, 1, 2, 6, 21, 112, 853 (OEIS A001349).
///
/// # Panics
///
/// Panics if `n > 8` (the enumeration is exponential; larger sizes are a
/// bug in the caller).
pub fn connected_graphs_on(n: usize) -> Vec<Graph> {
    assert!(n <= 8, "exhaustive enumeration limited to n <= 8, got {n}");
    if n == 0 {
        return Vec::new();
    }
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << pairs.len()) {
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> i & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        // Quick connectivity lower bound: a connected graph needs n-1 edges.
        if edges.len() + 1 < n {
            continue;
        }
        let g = Graph::from_edges(n, &edges).expect("enumerated edges are valid");
        if components::connected_components(&g).len() != 1 {
            continue;
        }
        let key = canon::canonical_key(&g);
        if seen.insert(key) {
            out.push(g);
        }
    }
    out
}

/// All connected graphs with between 1 and `max_n` nodes, one per
/// isomorphism class.
pub fn connected_graphs_up_to(max_n: usize) -> Vec<Graph> {
    (1..=max_n).flat_map(connected_graphs_on).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_counts() {
        assert_eq!(connected_graphs_on(1).len(), 1);
        assert_eq!(connected_graphs_on(2).len(), 1);
        assert_eq!(connected_graphs_on(3).len(), 2);
        assert_eq!(connected_graphs_on(4).len(), 6);
        assert_eq!(connected_graphs_on(5).len(), 21);
    }

    #[test]
    fn cumulative_count() {
        assert_eq!(connected_graphs_up_to(4).len(), 1 + 1 + 2 + 6);
    }

    #[test]
    fn representatives_are_pairwise_non_isomorphic() {
        let graphs = connected_graphs_on(4);
        for (i, a) in graphs.iter().enumerate() {
            for b in &graphs[i + 1..] {
                assert!(!canon::are_isomorphic(a, b));
            }
        }
    }
}
