//! Generators for every graph family used in the paper.
//!
//! * [`path`], [`cycle`], [`star`], [`complete`], [`complete_bipartite`] —
//!   basic families (Figs. 3, 5, and the hiding witnesses of Theorems 1.3
//!   and 1.4 are all paths and cycles);
//! * [`grid`], [`torus`], [`hypercube`] — the r-forgetful families of
//!   Section 1.3;
//! * [`balanced_tree`], [`random_tree`], [`caterpillar`] — trees (every
//!   tree has minimum degree one, i.e. lies in the class H₁ of Theorem 1.1);
//! * [`watermelon`], [`theta`] — the watermelon graphs of Theorem 1.4;
//! * [`with_pendant`], [`pendant_path`] — min-degree-one graphs (class H₁);
//! * [`gnp`], [`random_bipartite`], [`random_even_subdivision`] — random
//!   instances for property-based testing;
//! * [`petersen`] — a classic non-bipartite 3-regular no-instance;
//! * [`connected_graphs_up_to`] — exhaustive enumeration of all connected
//!   graphs on at most `k` nodes up to isomorphism (the "iterate over all
//!   possible yes-instances" step of Lemma 3.1).

mod basic;
mod enumerate;
mod grids;
mod random;
mod special;
mod trees;

pub use basic::{complete, complete_bipartite, cycle, path, star};
pub use enumerate::{connected_graphs_on, connected_graphs_up_to};
pub use grids::{grid, hypercube, torus};
pub use random::{
    gnp, random_bipartite, random_bipartite_regular, random_even_subdivision, random_regular,
};
pub use special::{pendant_path, petersen, theta, watermelon, with_pendant};
pub use trees::{balanced_tree, caterpillar, random_tree};
