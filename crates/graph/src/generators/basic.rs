//! Paths, cycles, stars, complete and complete bipartite graphs.

use crate::graph::Graph;

/// The path `P_n` on `n` nodes `0 - 1 - … - (n-1)`.
///
/// # Example
///
/// ```
/// let p = hiding_lcp_graph::generators::path(4);
/// assert_eq!(p.edge_count(), 3);
/// assert_eq!(p.degree(0), 1);
/// assert_eq!(p.degree(1), 2);
/// ```
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v - 1, v).expect("path edges are valid");
    }
    g
}

/// The cycle `C_n` on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes, got {n}");
    let mut g = path(n);
    g.add_edge(n - 1, 0).expect("closing edge is valid");
    g
}

/// The star `K_{1,leaves}`: node `0` is the center, nodes `1..=leaves` are
/// leaves.
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for v in 1..=leaves {
        g.add_edge(0, v).expect("star edges are valid");
    }
    g
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("complete-graph edges are valid");
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}` with parts `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            g.add_edge(u, v).expect("bipartite edges are valid");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let p = path(5);
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.min_degree(), Some(1));
        assert_eq!(p.max_degree(), Some(2));
        assert!(p.has_edge(2, 3));
        assert!(!p.has_edge(0, 4));
    }

    #[test]
    fn path_degenerate_cases() {
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(2).edge_count(), 1);
    }

    #[test]
    fn cycle_is_two_regular() {
        let c = cycle(6);
        assert_eq!(c.edge_count(), 6);
        assert_eq!(c.min_degree(), Some(2));
        assert_eq!(c.max_degree(), Some(2));
        assert!(c.has_edge(5, 0));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn cycle_rejects_tiny() {
        let _ = cycle(2);
    }

    #[test]
    fn star_degrees() {
        let s = star(4);
        assert_eq!(s.degree(0), 4);
        for leaf in 1..=4 {
            assert_eq!(s.degree(leaf), 1);
        }
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.edge_count(), 6);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
        assert!(g.has_edge(1, 4));
    }
}
