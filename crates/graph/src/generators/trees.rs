//! Tree generators. Every tree on ≥ 2 nodes has minimum degree one, so
//! trees populate the class H₁ of Theorem 1.1.

use crate::graph::Graph;
use rand::Rng;

/// The complete `arity`-ary tree of the given `depth` (depth 0 is a single
/// root). Node 0 is the root; children are laid out breadth-first.
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity >= 1, "arity must be positive");
    let mut total = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= arity;
        total += level;
    }
    let mut g = Graph::new(total);
    // Children of node v are arity*v + 1 ..= arity*v + arity.
    for v in 0..total {
        for c in 1..=arity {
            let child = arity * v + c;
            if child < total {
                g.add_edge(v, child).expect("tree edges are valid");
            }
        }
    }
    g
}

/// A uniformly random labeled tree on `n` nodes via a random Prüfer
/// sequence.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("K2 is valid");
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut g = Graph::new(n);
    // Repeatedly attach the smallest leaf to the next Prüfer entry.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = degree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 1)
        .map(|(v, _)| std::cmp::Reverse(v))
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("Prüfer decoding always has a leaf");
        g.add_edge(leaf, v).expect("Prüfer edges are valid");
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
    g.add_edge(a, b).expect("final Prüfer edge is valid");
    g
}

/// A caterpillar: a spine path on `spine` nodes with `legs` pendant leaves
/// attached to every spine node. Spine nodes come first.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut g = Graph::new(n);
    for v in 1..spine {
        g.add_edge(v - 1, v).expect("spine edges are valid");
    }
    for s in 0..spine {
        for l in 0..legs {
            g.add_edge(s, spine + s * legs + l)
                .expect("leg edges are valid");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_tree_counts() {
        let t = balanced_tree(2, 3);
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.edge_count(), 14);
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.degree(14), 1);
    }

    #[test]
    fn balanced_tree_depth_zero() {
        let t = balanced_tree(3, 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 10, 40] {
            let t = random_tree(n, &mut rng);
            assert_eq!(t.node_count(), n);
            assert_eq!(t.edge_count(), n.saturating_sub(1));
            let expected_components = usize::from(n > 0);
            assert_eq!(
                components::connected_components(&t).len(),
                expected_components
            );
        }
    }

    #[test]
    fn random_trees_vary() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_tree(12, &mut rng);
        let b = random_tree(12, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn caterpillar_shape() {
        let c = caterpillar(3, 2);
        assert_eq!(c.node_count(), 9);
        assert_eq!(c.edge_count(), 8);
        assert_eq!(c.degree(1), 4); // middle spine: 2 spine + 2 legs
        assert_eq!(c.min_degree(), Some(1));
    }
}
