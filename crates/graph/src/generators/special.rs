//! Watermelon graphs, theta graphs, pendant attachments and the Petersen
//! graph.

use crate::graph::Graph;

/// A *watermelon graph* (paper, Section 7.2): two endpoints `v₁ = 0` and
/// `v₂ = 1` joined by `path_lens.len()` internally-disjoint paths, the
/// `i`-th of length `path_lens[i]` (number of edges).
///
/// Internal nodes of path `i` are numbered consecutively after those of
/// path `i - 1`, starting at index 2.
///
/// # Panics
///
/// Panics if any path length is below 2 (the paper requires length ≥ 2 so
/// the paths are internally non-empty and the endpoints are non-adjacent)
/// or if no path is given.
///
/// # Example
///
/// ```
/// use hiding_lcp_graph::generators::watermelon;
/// // Two paths of lengths 2 and 4 form a 6-cycle.
/// let w = watermelon(&[2, 4]);
/// assert_eq!(w.node_count(), 6);
/// assert_eq!(w.degree(0), 2);
/// ```
pub fn watermelon(path_lens: &[usize]) -> Graph {
    assert!(
        !path_lens.is_empty(),
        "a watermelon needs at least one path"
    );
    assert!(
        path_lens.iter().all(|&l| l >= 2),
        "watermelon paths must have length >= 2, got {path_lens:?}"
    );
    let internal: usize = path_lens.iter().map(|&l| l - 1).sum();
    let mut g = Graph::new(2 + internal);
    let mut next = 2usize;
    for &len in path_lens {
        let mut prev = 0usize; // v1
        for _ in 0..(len - 1) {
            g.add_edge(prev, next).expect("watermelon edges are valid");
            prev = next;
            next += 1;
        }
        g.add_edge(prev, 1).expect("watermelon edges are valid");
    }
    g
}

/// The theta graph `Θ(a, b, c)`: a watermelon with exactly three paths.
pub fn theta(a: usize, b: usize, c: usize) -> Graph {
    watermelon(&[a, b, c])
}

/// Attaches a pendant (degree-one) node to `v`, returning the new graph and
/// the index of the pendant. This moves any graph into the class H₁ of
/// Theorem 1.1 (minimum degree one).
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn with_pendant(g: &Graph, v: usize) -> (Graph, usize) {
    assert!(v < g.node_count(), "node {v} out of range");
    let mut h = g.clone();
    let pendant = h.add_isolated_nodes(1);
    h.add_edge(v, pendant).expect("pendant edge is valid");
    (h, pendant)
}

/// A cycle `C_len` with a pendant path of `tail` extra nodes attached to
/// cycle node 0 — the smallest interesting members of H₁ that still
/// contain a cycle. With an odd `len` this is a canonical *no*-instance
/// whose only rejection must happen on the cycle.
pub fn pendant_path(len: usize, tail: usize) -> Graph {
    let mut g = super::basic::cycle(len);
    let first = g.add_isolated_nodes(tail);
    let mut prev = 0usize;
    for t in 0..tail {
        g.add_edge(prev, first + t).expect("tail edges are valid");
        prev = first + t;
    }
    g
}

/// The Petersen graph: 3-regular, girth 5, non-bipartite — a classic
/// no-instance for 2-coloring with minimum degree ≥ 2.
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for v in 0..5 {
        g.add_edge(v, (v + 1) % 5).expect("outer cycle");
        g.add_edge(v, v + 5).expect("spokes");
        g.add_edge(v + 5, (v + 2) % 5 + 5).expect("inner pentagram");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bipartite;

    #[test]
    fn watermelon_degrees() {
        let w = watermelon(&[2, 3, 4]);
        assert_eq!(w.node_count(), 2 + 1 + 2 + 3);
        assert_eq!(w.degree(0), 3);
        assert_eq!(w.degree(1), 3);
        for v in 2..w.node_count() {
            assert_eq!(w.degree(v), 2);
        }
        assert_eq!(w.edge_count(), 2 + 3 + 4);
    }

    #[test]
    fn watermelon_parity_controls_bipartiteness() {
        // All paths even -> bipartite; mixed parity -> odd cycle.
        assert!(bipartite::bipartition(&watermelon(&[2, 4])).is_ok());
        assert!(bipartite::bipartition(&watermelon(&[2, 3])).is_err());
        assert!(bipartite::bipartition(&watermelon(&[3, 5, 7])).is_ok());
    }

    #[test]
    #[should_panic(expected = "length >= 2")]
    fn watermelon_rejects_short_paths() {
        let _ = watermelon(&[1, 3]);
    }

    #[test]
    fn theta_is_three_path_watermelon() {
        let t = theta(2, 2, 2);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.degree(0), 3);
    }

    #[test]
    fn pendant_attaches_leaf() {
        let c = super::super::basic::cycle(5);
        let (g, p) = with_pendant(&c, 3);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.degree(p), 1);
        assert!(g.has_edge(3, p));
        assert_eq!(g.min_degree(), Some(1));
    }

    #[test]
    fn pendant_path_shape() {
        let g = pendant_path(4, 2);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.min_degree(), Some(1));
    }

    #[test]
    fn petersen_properties() {
        let p = petersen();
        assert_eq!(p.node_count(), 10);
        assert_eq!(p.edge_count(), 15);
        for v in p.nodes() {
            assert_eq!(p.degree(v), 3);
        }
        assert!(bipartite::bipartition(&p).is_err());
    }
}
