//! Grids, tori and hypercubes — the canonical r-forgetful families.
//!
//! The paper singles out "(regular) grids and trees" as r-forgetful
//! (Section 1.3); grids are also the SLOCAL 3-coloring lower-bound family
//! of Akbari et al. cited in the introduction.

use crate::graph::Graph;

/// The `rows × cols` grid; node `(r, c)` has index `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1).expect("grid edges are valid");
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols).expect("grid edges are valid");
            }
        }
    }
    g
}

/// The `rows × cols` torus (grid with wrap-around edges).
///
/// # Panics
///
/// Panics if either dimension is below 3 (wrap-around would create
/// multi-edges or loops).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let mut g = grid(rows, cols);
    for r in 0..rows {
        g.add_edge(r * cols, r * cols + cols - 1)
            .expect("torus row wrap edges are valid");
    }
    for c in 0..cols {
        g.add_edge(c, (rows - 1) * cols + c)
            .expect("torus column wrap edges are valid");
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes; nodes adjacent iff
/// their indices differ in exactly one bit.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                g.add_edge(v, u).expect("hypercube edges are valid");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // m = rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17.
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid(1, 5).edge_count(), 4); // a path
        assert_eq!(grid(0, 3).node_count(), 0);
    }

    #[test]
    fn torus_is_four_regular() {
        let t = torus(3, 4);
        assert_eq!(t.edge_count(), 24);
        for v in t.nodes() {
            assert_eq!(t.degree(v), 4);
        }
    }

    #[test]
    fn hypercube_is_d_regular() {
        let q3 = hypercube(3);
        assert_eq!(q3.node_count(), 8);
        assert_eq!(q3.edge_count(), 12);
        for v in q3.nodes() {
            assert_eq!(q3.degree(v), 3);
        }
        assert!(q3.has_edge(0b000, 0b100));
        assert!(!q3.has_edge(0b000, 0b110));
    }
}
