//! Seeded semantic mutants for the conformance mutation battery.
//!
//! This module only exists when the crate is compiled with
//! `RUSTFLAGS="--cfg conformance_mutants"`. Each *mutant* is a named,
//! deliberately wrong variant of one decision in this crate, dormant until
//! activated through [`set_active`]; production builds carry none of the
//! hooks. The `hiding-lcp-conformance` battery activates each mutant in
//! turn and asserts that at least one conformance probe notices — a
//! surviving mutant is a hole in the test suite, not a bug in the code.
//!
//! Mutants seeded in this crate (activated by name):
//!
//! * `dsatur_no_fresh_color` — the DSATUR search never opens a fresh
//!   color beyond the first, so most graphs become "uncolorable".
//! * `dsatur_sat_undo_dropped` — backtracking forgets to clear the
//!   saturation bit it set, over-constraining later branches.
//! * `iso_degree_sequence_only` — `are_isomorphic` degenerates to
//!   comparing degree sequences.
//! * `induced_drops_edge` — `Graph::induced` silently omits one edge.
//! * `orbit_drop_generator` — `algo::automorphism::port_automorphisms`
//!   silently loses one non-identity element, so the returned set is no
//!   longer a group and quotient multiplicities stop summing to `|Σ|^n`.

use std::sync::RwLock;

static ACTIVE: RwLock<Option<String>> = RwLock::new(None);

/// Activates the named mutant (or deactivates all with `None`).
///
/// Process-global: the battery runs mutants one at a time on one thread.
pub fn set_active(name: Option<&str>) {
    *ACTIVE.write().expect("mutant registry lock") = name.map(str::to_owned);
}

/// Whether the named mutant is currently active.
pub fn active(name: &str) -> bool {
    ACTIVE.read().expect("mutant registry lock").as_deref() == Some(name)
}
