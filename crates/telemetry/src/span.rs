//! Bounded span tracing with Chrome `trace_event` export.
//!
//! Spans are plain enter/exit event pairs (`ph: "B"` / `ph: "E"` in
//! Chrome's trace format) tagged with a timestamp from the recorder's
//! injected clock and a dense per-thread lane id. Events land in a
//! bounded ring: when full, the *oldest* events are overwritten and
//! [`SpanTrace::dropped`] counts them, so a trace is always a recent
//! suffix of the run and never an unbounded allocation.

use crate::json_escape;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Which side of a span an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span entry — Chrome `ph: "B"`.
    Enter,
    /// Span exit — Chrome `ph: "E"`.
    Exit,
}

/// One recorded span boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name, e.g. `plan`, `panel:labelings`, `block:2`, `chunk:128`.
    pub name: String,
    /// Enter or exit.
    pub phase: SpanPhase,
    /// Timestamp from the recorder's clock, in microseconds.
    pub ts_micros: u64,
    /// Dense lane id of the recording thread (0 for the first thread
    /// seen, 1 for the second, …) — stable within a trace, meaningless
    /// across traces.
    pub lane: u64,
}

/// The ring's guarded interior.
#[derive(Debug, Default)]
struct Ring {
    /// Events in arrival order; once at capacity, index `start` is the
    /// oldest and the ring wraps.
    events: Vec<SpanEvent>,
    start: usize,
    dropped: u64,
    /// Thread-id hash → dense lane id.
    lanes: HashMap<u64, u64>,
}

/// A bounded, thread-safe ring of span events.
#[derive(Debug)]
pub struct SpanTrace {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl SpanTrace {
    /// An empty trace holding at most `capacity` events (minimum 2, so
    /// one balanced span always fits).
    pub fn new(capacity: usize) -> SpanTrace {
        SpanTrace {
            ring: Mutex::new(Ring::default()),
            capacity: capacity.max(2),
        }
    }

    fn lane_of(ring: &mut Ring) -> u64 {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let key = h.finish();
        let next = ring.lanes.len() as u64;
        *ring.lanes.entry(key).or_insert(next)
    }

    fn push(&self, name: &str, phase: SpanPhase, ts_micros: u64) {
        let mut ring = self.ring.lock().expect("span ring lock");
        let lane = Self::lane_of(&mut ring);
        let event = SpanEvent {
            name: name.to_string(),
            phase,
            ts_micros,
            lane,
        };
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let start = ring.start;
            ring.events[start] = event;
            ring.start = (start + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// Records a span entry at `ts_micros`.
    pub fn enter(&self, name: &str, ts_micros: u64) {
        self.push(name, SpanPhase::Enter, ts_micros);
    }

    /// Records a span exit at `ts_micros`.
    pub fn exit(&self, name: &str, ts_micros: u64) {
        self.push(name, SpanPhase::Exit, ts_micros);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let ring = self.ring.lock().expect("span ring lock");
        let mut out = Vec::with_capacity(ring.events.len());
        for i in 0..ring.events.len() {
            out.push(ring.events[(ring.start + i) % ring.events.len()].clone());
        }
        out
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("span ring lock").dropped
    }

    /// Whether every lane's retained events form a properly nested
    /// enter/exit sequence with nothing left open. Only meaningful when
    /// nothing was dropped (a truncated trace loses prefixes whole).
    pub fn is_balanced(&self) -> bool {
        let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
        for event in self.events() {
            let stack = stacks.entry(event.lane).or_default();
            match event.phase {
                SpanPhase::Enter => stack.push(event.name),
                SpanPhase::Exit => {
                    if stack.pop().as_deref() != Some(event.name.as_str()) {
                        return false;
                    }
                }
            }
        }
        stacks.values().all(|stack| stack.is_empty())
    }

    /// Renders the retained events as Chrome `trace_event` JSON (the
    /// "JSON object format": a `traceEvents` array of `B`/`E` events).
    /// Load the file in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut events = String::new();
        for e in self.events() {
            if !events.is_empty() {
                events.push_str(",\n    ");
            }
            let ph = match e.phase {
                SpanPhase::Enter => "B",
                SpanPhase::Exit => "E",
            };
            events.push_str(&format!(
                "{{\"name\": \"{}\", \"ph\": \"{ph}\", \"ts\": {}, \"pid\": 1, \"tid\": {}}}",
                json_escape(&e.name),
                e.ts_micros,
                e.lane,
            ));
        }
        format!(
            "{{\n  \"traceEvents\": [\n    {events}\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"droppedEvents\": {}\n}}\n",
            self.dropped()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_order_and_balance() {
        let trace = SpanTrace::new(16);
        trace.enter("plan", 0);
        trace.enter("panel:labelings", 1);
        trace.exit("panel:labelings", 9);
        trace.exit("plan", 10);
        let events = trace.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, "plan");
        assert_eq!(events[3].phase, SpanPhase::Exit);
        assert!(trace.is_balanced());
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn unbalanced_traces_are_detected() {
        let open = SpanTrace::new(8);
        open.enter("a", 0);
        assert!(!open.is_balanced());

        let crossed = SpanTrace::new(8);
        crossed.enter("a", 0);
        crossed.enter("b", 1);
        crossed.exit("a", 2);
        crossed.exit("b", 3);
        assert!(!crossed.is_balanced());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let trace = SpanTrace::new(4);
        for i in 0..6u64 {
            trace.enter(&format!("s{i}"), i);
        }
        assert_eq!(trace.dropped(), 2);
        let names: Vec<String> = trace.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["s2", "s3", "s4", "s5"]);
    }

    #[test]
    fn chrome_json_shape() {
        let trace = SpanTrace::new(8);
        trace.enter("sweep", 5);
        trace.exit("sweep", 11);
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\n  \"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"ph\": \"E\""));
        assert!(json.contains("\"ts\": 11"));
        assert!(json.contains("\"droppedEvents\": 0"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "balanced JSON");
    }
}
