//! Injected monotonic time sources.
//!
//! The recorder contract forbids ambient time reads: every timestamp is
//! obtained from a [`Clock`] chosen at recorder construction. Production
//! recorders use [`MonotonicClock`]; determinism tests and replays use
//! [`ManualClock`], whose ticks are advanced explicitly so two replays
//! of the same schedule produce byte-identical histograms and traces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source measured in microseconds from an arbitrary
/// per-clock epoch. Implementations must be cheap (called at chunk and
/// phase granularity, never per item) and monotonic per clock instance;
/// cross-clock comparison is meaningless.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since this clock's epoch.
    fn now_micros(&self) -> u64;
}

/// The production clock: an [`Instant`] anchor captured at construction.
/// `Instant` is monotonic (never adjusted backwards by wall-clock
/// changes), which is exactly the guarantee span durations need.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A clock that only moves when told to: reads return the current tick
/// value, [`ManualClock::advance`] moves it forward. Replaying the same
/// sequence of advances yields the same timestamps, making every
/// downstream artifact (histograms, trace JSON) reproducible in tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    tick: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.tick.fetch_add(micros, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let mut last = clock.now_micros();
        for _ in 0..100 {
            let t = clock.now_micros();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_micros(), 0);
        assert_eq!(clock.now_micros(), 0);
        clock.advance(5);
        clock.advance(37);
        assert_eq!(clock.now_micros(), 42);
    }
}
