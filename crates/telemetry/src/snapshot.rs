//! Ordered, diffable counter snapshots.
//!
//! A snapshot is two sorted name → value sections:
//!
//! * **stable** — counters whose totals are a pure function of the
//!   sweep's inputs for complete (non-short-circuited) walks: items
//!   walked, orbit census, verdict refreshes, panics, interruptions.
//!   The determinism suite byte-compares this section across runs and
//!   thread counts.
//! * **observed** — counters that legitimately depend on scheduling:
//!   memo hit/miss splits, interner front-cache traffic, lock
//!   contention, phase timings. Real data, no determinism promise.
//!
//! The split is the telemetry determinism *policy*, encoded in the data
//! model rather than in test comments.

use crate::json_escape;

/// A frozen pair of sorted counter sections. Construct via
/// [`MetricsSnapshot::new`]; names are sorted on entry so rendering and
/// diffing never depend on insertion order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Deterministic counters, sorted by name.
    pub stable: Vec<(String, u64)>,
    /// Scheduling-dependent counters, sorted by name.
    pub observed: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Builds a snapshot, sorting both sections by counter name.
    pub fn new(
        mut stable: Vec<(String, u64)>,
        mut observed: Vec<(String, u64)>,
    ) -> MetricsSnapshot {
        stable.sort_by(|a, b| a.0.cmp(&b.0));
        observed.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { stable, observed }
    }

    /// Looks a counter up by name in either section.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.stable
            .iter()
            .chain(&self.observed)
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// All counters of both sections, stable first, each sorted.
    pub fn all(&self) -> impl Iterator<Item = (&str, u64)> {
        self.stable
            .iter()
            .chain(&self.observed)
            .map(|(n, v)| (n.as_str(), *v))
    }

    /// The canonical byte rendering of the stable section — what the
    /// determinism suite compares across runs and thread counts.
    pub fn stable_bytes(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.stable {
            out.push_str(&format!("{name}={value}\n"));
        }
        out
    }

    /// Renders both sections as one JSON object:
    /// `{"stable": {…}, "observed": {…}}`.
    pub fn to_json(&self) -> String {
        fn section(pairs: &[(String, u64)]) -> String {
            let mut out = String::new();
            for (name, value) in pairs {
                if !out.is_empty() {
                    out.push_str(",\n    ");
                }
                out.push_str(&format!("\"{}\": {value}", json_escape(name)));
            }
            out
        }
        format!(
            "{{\n  \"stable\": {{\n    {}\n  }},\n  \"observed\": {{\n    {}\n  }}\n}}\n",
            section(&self.stable),
            section(&self.observed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> MetricsSnapshot {
        MetricsSnapshot::new(
            vec![
                ("items_walked".into(), 32),
                ("budget_interruptions".into(), 0),
            ],
            vec![("memo_hits".into(), 7)],
        )
    }

    #[test]
    fn sections_sort_and_lookup() {
        let s = snap();
        assert_eq!(s.stable[0].0, "budget_interruptions", "sorted on entry");
        assert_eq!(s.get("items_walked"), Some(32));
        assert_eq!(s.get("memo_hits"), Some(7));
        assert_eq!(s.get("nonexistent"), None);
    }

    #[test]
    fn stable_bytes_ignore_insertion_order() {
        let a = MetricsSnapshot::new(vec![("a".into(), 1), ("b".into(), 2)], vec![]);
        let b = MetricsSnapshot::new(vec![("b".into(), 2), ("a".into(), 1)], vec![]);
        assert_eq!(a.stable_bytes(), b.stable_bytes());
        assert_eq!(a.stable_bytes(), "a=1\nb=2\n");
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let json = snap().to_json();
        for key in ["stable", "observed", "items_walked", "memo_hits"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }
}
