//! Observability primitives for the sweep engine, dependency-free by
//! construction (the workspace's reproduction mandate extends to its
//! tooling).
//!
//! The crate deliberately knows nothing about sweeps, universes or
//! checks — it supplies the four mechanical pieces the engine-side
//! recorder (`hiding-lcp-core::verify::telemetry`) composes:
//!
//! * [`Clock`] — an *injected* monotonic time source. Every timestamp
//!   the telemetry layer ever records flows through a `Clock`, never
//!   through ambient wall-clock reads, so a replay under
//!   [`ManualClock`] is bit-deterministic while production uses
//!   [`MonotonicClock`] (an `Instant` anchor, immune to wall-clock
//!   adjustment).
//! * [`ShardedCounters`] — a fixed family of `AtomicU64` counters,
//!   sharded per-thread so concurrent workers never contend on a cache
//!   line; [`ShardedCounters::merged`] folds the shards with plain
//!   addition, which is commutative, so the merged totals are
//!   independent of thread interleaving by construction.
//! * [`Histogram`] — log2-bucketed value distribution (64 buckets
//!   cover the full `u64` range) for per-phase durations.
//! * [`SpanTrace`] — a bounded ring buffer of enter/exit span events,
//!   exportable as Chrome `trace_event` JSON (open a trace in
//!   `chrome://tracing` or <https://ui.perfetto.dev>). Overflow
//!   overwrites the *oldest* events and is counted, never silent.
//! * [`MetricsSnapshot`] — an ordered, diffable view of the counters,
//!   split into a `stable` section (byte-identical across thread
//!   counts for deterministic walks) and an `observed` section
//!   (scheduling-dependent values like memo hit splits).

mod clock;
mod counters;
mod hist;
mod snapshot;
mod span;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use counters::ShardedCounters;
pub use hist::{Histogram, HistogramSnapshot};
pub use snapshot::MetricsSnapshot;
pub use span::{SpanEvent, SpanPhase, SpanTrace};

/// Escapes a string for embedding in a JSON string literal. Shared by
/// the trace and snapshot renderers (the workspace hand-rolls all JSON).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
