//! Log2-bucketed histograms for phase durations.
//!
//! 64 power-of-two buckets cover every `u64` value exactly (value `v`
//! lands in bucket `bit_width(v)`, so bucket `b > 0` holds values in
//! `[2^(b-1), 2^b)` and bucket 0 holds zero). Recording is one atomic
//! increment plus one atomic add — cheap enough for chunk-granularity
//! timing, though still never called per item.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible `u64` bit width (0..=64 collapses
/// to 0..64 because bucket 64 would need values ≥ 2^63·2).
const BUCKETS: usize = 65;

/// A concurrent log2 histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index of `value`: its bit width, so buckets are
    /// `{0}, [1,2), [2,4), [4,8), …`.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`Histogram`]: per-bucket counts plus sample count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[b]` = samples whose bit width is `b`.
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Renders the non-empty buckets as a JSON object:
    /// `{"count": …, "sum": …, "buckets": {"<lower bound>": n, …}}`.
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !buckets.is_empty() {
                buckets.push_str(", ");
            }
            let lower: u64 = if b == 0 { 0 } else { 1u64 << (b - 1) };
            buckets.push_str(&format!("\"{lower}\": {n}"));
        }
        format!(
            "{{\"count\": {}, \"sum\": {}, \"buckets\": {{{buckets}}}}}",
            self.count, self.sum
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_widths() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 9);
        assert_eq!(snap.buckets[0], 1, "zero");
        assert_eq!(snap.buckets[1], 1, "one");
        assert_eq!(snap.buckets[2], 2, "2 and 3");
        assert_eq!(snap.buckets[3], 2, "4 and 7");
        assert_eq!(snap.buckets[4], 1, "8");
        assert_eq!(snap.buckets[11], 1, "1024");
        assert_eq!(snap.buckets[64], 1, "u64::MAX");
    }

    #[test]
    fn json_lists_only_populated_buckets() {
        let h = Histogram::new();
        h.record(5);
        h.record(6);
        h.record(100);
        let json = h.snapshot().to_json();
        assert_eq!(
            json,
            "{\"count\": 3, \"sum\": 111, \"buckets\": {\"4\": 2, \"64\": 1}}"
        );
    }
}
