//! Lock-free sharded counter families.
//!
//! A counter family is a fixed set of named slots (the engine names them
//! with an enum) backed by `shards × slots` atomics. Writers pick a
//! shard from their thread identity so concurrent workers touch disjoint
//! cache lines; readers fold the shards with addition. Addition is
//! commutative and associative, so the merged totals are independent of
//! which thread incremented what — the order-insensitivity the
//! telemetry determinism suite byte-compares across thread counts.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shard count: enough to keep a handful of workers off each other's
/// cache lines without bloating the merge. Fixed (not
/// parallelism-scaled) so the memory footprint of a recorder is a
/// compile-time constant.
const SHARDS: usize = 16;

/// A fixed family of `u64` counters, sharded for contention-free
/// concurrent increment.
#[derive(Debug)]
pub struct ShardedCounters {
    /// `shards[s][c]` = shard `s`'s contribution to counter `c`.
    shards: Vec<Vec<AtomicU64>>,
}

impl ShardedCounters {
    /// A family of `slots` counters, all zero.
    pub fn new(slots: usize) -> ShardedCounters {
        ShardedCounters {
            shards: (0..SHARDS)
                .map(|_| (0..slots).map(|_| AtomicU64::new(0)).collect())
                .collect(),
        }
    }

    /// Number of counter slots in the family.
    pub fn slots(&self) -> usize {
        self.shards[0].len()
    }

    /// The calling thread's shard index (stable for the thread's
    /// lifetime; distinct threads usually map to distinct shards).
    fn shard_index() -> usize {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Adds `delta` to counter `slot` on the calling thread's shard.
    pub fn add(&self, slot: usize, delta: u64) {
        self.shards[Self::shard_index()][slot].fetch_add(delta, Ordering::Relaxed);
    }

    /// Folds every shard into per-slot totals. Addition commutes, so
    /// the result is independent of which shard (thread) held what.
    pub fn merged(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.slots()];
        for shard in &self.shards {
            for (slot, counter) in shard.iter().enumerate() {
                out[slot] += counter.load(Ordering::Relaxed);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_sums_across_shards_and_threads() {
        let counters = ShardedCounters::new(3);
        counters.add(0, 2);
        counters.add(2, 5);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        counters.add(1, 1);
                        counters.add(2, 2);
                    }
                });
            }
        });
        assert_eq!(counters.merged(), vec![2, 400, 805]);
    }

    #[test]
    fn slots_reports_the_family_size() {
        assert_eq!(ShardedCounters::new(7).slots(), 7);
        assert_eq!(ShardedCounters::new(7).merged(), vec![0; 7]);
    }
}
