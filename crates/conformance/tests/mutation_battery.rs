//! The mutation battery: arms every seeded mutant in turn, replays the
//! full probe list, and fails unless each mutant is killed — with the
//! kill matrix printed either way.
//!
//! The mutants (and this battery) exist only under
//! `RUSTFLAGS="--cfg conformance_mutants"`; the CI `mutants` job runs
//! exactly this binary. The battery must own its process (the mutant
//! registry is one global switch), which is why it lives alone here.

#[cfg(conformance_mutants)]
#[test]
fn every_seeded_mutant_dies() {
    use hiding_lcp_conformance::catalog;

    let matrix = catalog::run_battery();
    let rendered = catalog::render_matrix(&matrix);
    println!("{rendered}");
    let survivors: Vec<&str> = matrix
        .iter()
        .filter(|r| r.killers.is_empty())
        .map(|r| r.mutant)
        .collect();
    assert!(
        survivors.is_empty(),
        "surviving mutants — each names a coverage hole in the probe battery: {survivors:?}\n{rendered}"
    );
    for record in &matrix {
        assert!(
            record.expected_hit,
            "mutant `{}` was killed, but only by probes the catalog does not \
             expect ({:?}) — update the catalog or the drifted probe\n{rendered}",
            record.mutant, record.killers
        );
    }
}

/// Without the cfg the mutants are compiled out and there is nothing to
/// battery-test; this placeholder documents the gate so the binary is
/// never silently empty.
#[cfg(not(conformance_mutants))]
#[test]
fn battery_requires_the_conformance_mutants_cfg() {
    assert!(
        !hiding_lcp_conformance::catalog::MUTANTS.is_empty(),
        "the catalog is always visible; the hooks need RUSTFLAGS=\"--cfg conformance_mutants\""
    );
}
