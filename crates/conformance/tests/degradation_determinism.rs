//! Determinism of the network-degradation sweep: byte-identical reports
//! per seed across reruns, and across budget-interrupted resume chains
//! assembled from `degradation_sweep_slice`.
//!
//! The sweep derives every trial seed from the (seed, global rate index,
//! trial, salt) tuple, never from ambient state or thread identity, so
//! the CI conformance job running this binary at `PARITY_THREADS` ∈
//! {1, 2, 4} must see the same bytes each time.

use hiding_lcp_conformance::probes::LocalDiff;
use hiding_lcp_core::instance::{Instance, LabeledInstance};
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::language::KCol;
use hiding_lcp_core::network::degradation::{degradation_sweep, degradation_sweep_slice};
use hiding_lcp_graph::generators;

/// FNV-1a of the fixture report's `Debug` rendering (see
/// [`report_matches_the_golden_digest`]).
const GOLDEN_DIGEST: u64 = 6166955872067172605;

fn fixture() -> (LabeledInstance, Vec<Labeling>, Vec<f64>) {
    let honest = Instance::canonical(generators::cycle(6)).with_labeling(
        (0..6)
            .map(|v| Certificate::from_byte((v % 2) as u8))
            .collect(),
    );
    let mut one_flip = honest.labeling().clone();
    one_flip.set(2, Certificate::from_byte(0));
    let adversarial = vec![Labeling::uniform(6, Certificate::from_byte(0)), one_flip];
    (honest, adversarial, vec![0.0, 0.1, 0.25, 0.5])
}

#[test]
fn reruns_are_byte_identical() {
    let (honest, adversarial, rates) = fixture();
    let language = KCol::new(2);
    let a = degradation_sweep(
        &LocalDiff,
        &language,
        &honest,
        &adversarial,
        &rates,
        6,
        0xFEED,
    );
    let b = degradation_sweep(
        &LocalDiff,
        &language,
        &honest,
        &adversarial,
        &rates,
        6,
        0xFEED,
    );
    assert_eq!(a, b);
    // Byte-identical, not just structurally equal: the rendered report is
    // what experiment logs diff against.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// Stable FNV-1a over the rendered report.
fn digest(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// The fixture report pinned as a golden digest: the sweep is a pure
/// function of its arguments, so every CI `conformance` matrix leg
/// (`PARITY_THREADS` ∈ {1, 2, 4}) and every host must render the exact
/// same bytes. A digest change means the fault model's semantics moved —
/// rebless deliberately, with the diff in hand.
#[test]
fn report_matches_the_golden_digest() {
    let (honest, adversarial, rates) = fixture();
    let language = KCol::new(2);
    let report = degradation_sweep(
        &LocalDiff,
        &language,
        &honest,
        &adversarial,
        &rates,
        6,
        0xFEED,
    );
    assert_eq!(
        digest(&format!("{report:?}")),
        GOLDEN_DIGEST,
        "degradation report bytes drifted; if intentional, rebless:\n{report:#?}"
    );
}

#[test]
fn distinct_seeds_give_distinct_runs() {
    let (honest, adversarial, rates) = fixture();
    let language = KCol::new(2);
    let a = degradation_sweep(&LocalDiff, &language, &honest, &adversarial, &rates, 8, 1);
    let b = degradation_sweep(&LocalDiff, &language, &honest, &adversarial, &rates, 8, 2);
    assert_ne!(a, b, "the seed must actually steer the fault plans");
    // The fault-free point is seed-independent by construction.
    assert_eq!(a.points[0], b.points[0]);
}

/// A budget-interrupted sweep resumed slice by slice concatenates to the
/// byte-identical uninterrupted report — including a re-run (overlapping)
/// slice, which must reproduce its points exactly.
#[test]
fn slices_concatenate_to_the_full_report() {
    let (honest, adversarial, rates) = fixture();
    let language = KCol::new(2);
    let full = degradation_sweep(
        &LocalDiff,
        &language,
        &honest,
        &adversarial,
        &rates,
        6,
        0xFEED,
    );
    let mut chained = Vec::new();
    for range in [0..1, 1..3, 3..4] {
        chained.extend(degradation_sweep_slice(
            &LocalDiff,
            &language,
            &honest,
            &adversarial,
            &rates,
            6,
            0xFEED,
            range,
        ));
    }
    assert_eq!(chained, full.points);

    let rerun = degradation_sweep_slice(
        &LocalDiff,
        &language,
        &honest,
        &adversarial,
        &rates,
        6,
        0xFEED,
        1..3,
    );
    assert_eq!(
        rerun,
        full.points[1..3],
        "an overlapping re-run slice reproduces its points"
    );

    let empty = degradation_sweep_slice(
        &LocalDiff,
        &language,
        &honest,
        &adversarial,
        &rates,
        6,
        0xFEED,
        2..2,
    );
    assert!(empty.is_empty());
}
