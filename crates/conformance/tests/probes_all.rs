//! Clean-build sanity: every conformance probe passes with no mutant
//! active, and the mutant catalog agrees with the probe battery.

use hiding_lcp_conformance::{catalog, probes};

#[test]
fn every_probe_passes_on_the_clean_build() {
    for (name, probe) in probes::ALL {
        eprintln!("probe {name}");
        probe();
    }
}

#[test]
fn catalog_names_real_probes_and_unique_mutants() {
    catalog::check_catalog_consistency();
    assert!(
        catalog::MUTANTS.len() >= 15,
        "the battery certifies at least fifteen seeded mutants"
    );
}
