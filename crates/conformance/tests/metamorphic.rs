//! Metamorphic suites: verdicts must be invariant under node renaming
//! (graph isomorphism carrying ports and identifiers), certificate-
//! alphabet bijections, identifier remappings, and must compose across
//! disjoint union — each relation exercised through the production engine
//! under both sweep strategies.

use hiding_lcp_conformance::meta;
use hiding_lcp_conformance::oracle;
use hiding_lcp_conformance::parity_threads;
use hiding_lcp_conformance::probes::{bits, LocalDiff, TriangleSpotter, YesMan};
use hiding_lcp_core::decoder::{self, Decoder};
use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::language::KCol;
use hiding_lcp_core::lower::PortObliviousCycleDecoder;
use hiding_lcp_core::properties::soundness::SoundnessCheck;
use hiding_lcp_core::properties::strong::check_strong_exhaustive;
use hiding_lcp_core::verify::{Coverage, ExecMode, SweepOpts, SweepSession, Universe};
use hiding_lcp_graph::canon::are_isomorphic;
use hiding_lcp_graph::generators;
use proptest::prelude::*;

fn modes() -> [ExecMode; 2] {
    [ExecMode::Sequential, ExecMode::Parallel(parity_threads())]
}

fn strategies() -> [SweepOpts; 2] {
    [SweepOpts::default(), SweepOpts::oracle()]
}

/// A handful of permutations of `0..n` (identity, reversal, rotation).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let identity: Vec<usize> = (0..n).collect();
    let reversal: Vec<usize> = (0..n).rev().collect();
    let rotation: Vec<usize> = (0..n).map(|v| (v + 1) % n).collect();
    vec![identity, reversal, rotation]
}

/// Node renaming permutes per-node verdicts: node `perm[v]` of the image
/// decides exactly as node `v` of the original, for decoders of every
/// radius and id sensitivity the transform claims to preserve.
#[test]
fn renaming_permutes_verdicts() {
    for g in [
        generators::cycle(5),
        generators::path(4),
        generators::star(3),
    ] {
        let n = g.node_count();
        let instance = Instance::canonical(g);
        for perm in permutations(n) {
            let image = meta::permuted(&instance, &perm);
            assert!(
                are_isomorphic(instance.graph(), image.graph()),
                "renaming preserves the graph up to isomorphism"
            );
            for labeling in oracle::all_labelings(n, &bits()) {
                let image_labeling = meta::permuted_labeling(&labeling, &perm);
                for decoder in [&LocalDiff as &dyn Decoder, &TriangleSpotter] {
                    let original = oracle::run_by_definition(decoder, &instance, &labeling);
                    let renamed = oracle::run_by_definition(decoder, &image, &image_labeling);
                    for v in 0..n {
                        assert_eq!(
                            original[v], renamed[perm[v]],
                            "node {v} changed verdict under renaming {perm:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Aggregate soundness verdicts are invariant under renaming: the count of
/// unanimously accepted labelings is a graph invariant, and the engine
/// agrees on the renamed instance under every strategy.
#[test]
fn renaming_preserves_unanimous_counts() {
    let instance = Instance::canonical(generators::cycle(5));
    let baseline = oracle::unanimous_count(&LocalDiff, &instance, &bits());
    for perm in permutations(5) {
        let image = meta::permuted(&instance, &perm);
        assert_eq!(
            oracle::unanimous_count(&LocalDiff, &image, &bits()),
            baseline,
            "unanimous-acceptance count drifted under {perm:?}"
        );
        let universe = Universe::all_labelings_of(image.clone(), bits(), Coverage::Exhaustive)
            .expect("32 labelings fit");
        let check = SoundnessCheck {
            decoder: &LocalDiff,
        };
        for mode in modes() {
            for opts in strategies() {
                let report = SweepSession::over(&universe)
                    .mode(mode)
                    .opts(opts)
                    .run(&check);
                assert_eq!(
                    report.verdict.is_err(),
                    baseline > 0,
                    "engine soundness verdict drifted under renaming"
                );
            }
        }
    }
}

/// Swapping the two certificates of the binary alphabet is a bijection the
/// paper's equality-comparing decoders cannot observe: every per-node
/// verdict survives, and so does the strong-soundness verdict.
#[test]
fn alphabet_bijection_preserves_verdicts() {
    let (zero, one) = (Certificate::from_byte(0), Certificate::from_byte(1));
    for g in [
        generators::cycle(4),
        generators::cycle(5),
        generators::path(4),
    ] {
        let n = g.node_count();
        let instance = Instance::canonical(g);
        for labeling in oracle::all_labelings(n, &bits()) {
            let swapped = meta::swap_certs(&labeling, &zero, &one);
            assert_eq!(
                oracle::run_by_definition(&LocalDiff, &instance, &labeling),
                oracle::run_by_definition(&LocalDiff, &instance, &swapped),
                "local-diff observed the alphabet bijection"
            );
        }
        let violation = check_strong_exhaustive(&LocalDiff, &KCol::new(2), &instance, &bits());
        let swapped_violation = match check_strong_exhaustive(
            &LocalDiff,
            &KCol::new(2),
            &instance,
            &[one.clone(), zero.clone()],
        ) {
            // The swapped alphabet enumerates the same labelings in a
            // different order, so compare outcomes, not witnesses.
            Ok(count) => Ok(count),
            Err(v) => Err(v.accepting.len()),
        };
        match violation {
            Ok(count) => assert_eq!(swapped_violation, Ok(count)),
            Err(v) => {
                // A violating labeling maps to a violating labeling with
                // an accepting set of the same size (the swap is applied
                // nodewise, verdicts are preserved pointwise).
                assert_eq!(swapped_violation, Err(v.accepting.len()));
            }
        }
    }
}

/// Identifier remapping is invisible to anonymous decoders (the
/// anonymity half of Section 2.2), oracle and engine alike.
#[test]
fn id_remapping_invisible_to_anonymous_decoders() {
    let instance = Instance::canonical(generators::cycle(4));
    let bound = instance.ids().bound();
    let variants: Vec<_> = [vec![4, 3, 2, 1], vec![2, 4, 6, 8], vec![13, 1, 7, 2]]
        .into_iter()
        .map(|ids| hiding_lcp_graph::IdAssignment::from_ids(ids, bound).expect("ids fit"))
        .collect();
    for labeling in oracle::all_labelings(4, &bits()) {
        for decoder in [&LocalDiff as &dyn Decoder, &YesMan, &TriangleSpotter] {
            assert_eq!(
                oracle::invariance(decoder, &instance, &labeling, &variants),
                Ok(()),
                "{} observed an identifier remap",
                decoder.name()
            );
        }
    }
}

/// Views never cross a disjoint-union seam, so the union's verdict vector
/// is the concatenation of the parts' — for every decoder and labeling
/// pair tried, through the production per-node runner.
#[test]
fn disjoint_union_concatenates_verdicts() {
    let a_inst = Instance::canonical(generators::cycle(3));
    let b_inst = Instance::canonical(generators::path(3));
    for a_labeling in oracle::all_labelings(3, &bits()) {
        for b_labeling in oracle::all_labelings(3, &bits()) {
            let a = a_inst.clone().with_labeling(a_labeling.clone());
            let b = b_inst.clone().with_labeling(b_labeling.clone());
            let union = meta::disjoint_union(&a, &b);
            for decoder in [&LocalDiff as &dyn Decoder, &TriangleSpotter] {
                let mut expected = decoder::run(decoder, &a);
                expected.extend(decoder::run(decoder, &b));
                assert_eq!(
                    decoder::run(decoder, &union),
                    expected,
                    "{} verdicts failed to concatenate",
                    decoder.name()
                );
            }
        }
    }
}

/// Union composition at the property level: a union is unanimously
/// accepted iff both parts are, so the unanimous count over the union's
/// labelings is the product of the parts' counts.
#[test]
fn disjoint_union_multiplies_unanimous_counts() {
    let a_inst = Instance::canonical(generators::cycle(4));
    let b_inst = Instance::canonical(generators::path(2));
    let empty_a = a_inst.clone().with_labeling(Labeling::empty(4));
    let empty_b = b_inst.clone().with_labeling(Labeling::empty(2));
    let union_inst = meta::disjoint_union(&empty_a, &empty_b).instance().clone();
    let product = oracle::unanimous_count(&LocalDiff, &a_inst, &bits())
        * oracle::unanimous_count(&LocalDiff, &b_inst, &bits());
    assert_eq!(
        oracle::unanimous_count(&LocalDiff, &union_inst, &bits()),
        product,
        "the union's unanimous count is not the product of the parts'"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Renaming invariance for arbitrary port-oblivious cycle decoders:
    /// the engine's verdict vector on a rotated cycle is the rotation of
    /// the original's, under both strategies.
    #[test]
    fn rotation_invariance_on_cycles(code in 0u8..64, rot in 1usize..6, seed in 0u64..256) {
        let n = 6;
        let instance = Instance::canonical(generators::cycle(n));
        let perm: Vec<usize> = (0..n).map(|v| (v + rot) % n).collect();
        let image = meta::permuted(&instance, &perm);
        let labeling: Labeling = (0..n)
            .map(|v| Certificate::from_byte(((seed >> v) & 1) as u8))
            .collect();
        let image_labeling = meta::permuted_labeling(&labeling, &perm);
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let original = decoder::run(&decoder, &instance.clone().with_labeling(labeling));
        let renamed = decoder::run(&decoder, &image.with_labeling(image_labeling));
        for v in 0..n {
            prop_assert_eq!(original[v], renamed[perm[v]], "node {} under rotation {}", v, rot);
        }
    }
}
