//! ViewInterner contract tests: dense id allocation across shards, id
//! stability under concurrent interning, and `ViewId` → view round-trips.

use hiding_lcp_conformance::oracle;
use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::Certificate;
use hiding_lcp_core::verify::{digit_key, ViewInterner};
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::generators;
use std::collections::HashMap;

/// Two bits of certificate alphabet.
fn bits() -> Vec<Certificate> {
    vec![Certificate::from_byte(0), Certificate::from_byte(1)]
}

/// Every radius-`radius` anonymous view of every binary labeling of `g`'s
/// instance — lots of duplicates, a controlled set of distinct views.
fn view_pool(instance: &Instance, radius: usize) -> Vec<View> {
    let n = instance.graph().node_count();
    oracle::all_labelings(n, &bits())
        .iter()
        .flat_map(|labeling| {
            (0..n)
                .map(|v| instance.view(labeling, v, radius, IdMode::Anonymous))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn distinct_count(pool: &[View]) -> usize {
    let mut distinct: Vec<&View> = Vec::new();
    for v in pool {
        if !distinct.contains(&v) {
            distinct.push(v);
        }
    }
    distinct.len()
}

/// Interning a pool with few distinct views mints dense ids `0..len`,
/// re-interning hits, and the snapshot round-trips id → view.
#[test]
fn dense_ids_and_snapshot_round_trip() {
    let instance = Instance::canonical(generators::cycle(5));
    let pool = view_pool(&instance, 1);
    let expected_distinct = distinct_count(&pool);
    let interner = ViewInterner::new();
    let mut id_of: HashMap<View, u32> = HashMap::new();
    for view in &pool {
        let id = interner.intern(view.clone());
        let prev = id_of.insert(view.clone(), id);
        if let Some(prev) = prev {
            assert_eq!(prev, id, "an equal view re-interned under a new id");
        }
    }
    assert_eq!(interner.len(), expected_distinct);
    let mut ids: Vec<u32> = id_of.values().copied().collect();
    ids.sort_unstable();
    let dense: Vec<u32> = (0..expected_distinct as u32).collect();
    assert_eq!(ids, dense, "ids must be dense from 0 with no gaps");
    let snapshot = interner.snapshot();
    assert_eq!(snapshot.len(), expected_distinct);
    for (view, &id) in &id_of {
        assert_eq!(&snapshot[id as usize], view, "snapshot[id] round-trips");
    }
    // `intern` counts one front-cache miss per call (front-cache hits come
    // only from `lookup_key`), so the miss counter equals the call count.
    let (hits, misses) = interner.stats();
    assert_eq!(misses, pool.len(), "one counted miss per intern call");
    assert_eq!(hits, 0, "no keyed lookups were made");
}

/// A larger distinct set spreads across the interner's shards; density
/// must survive the sharding (shard-local allocation may not leave gaps
/// or collide).
#[test]
fn shards_allocate_densely() {
    let c6 = Instance::canonical(generators::cycle(6));
    let p5 = Instance::canonical(generators::path(5));
    let mut pool = view_pool(&c6, 2);
    pool.extend(view_pool(&p5, 1));
    let expected_distinct = distinct_count(&pool);
    assert!(expected_distinct >= 32, "pool too small to exercise shards");
    let interner = ViewInterner::new();
    let mut seen = vec![false; expected_distinct];
    for view in &pool {
        let id = interner.intern(view.clone()) as usize;
        assert!(id < expected_distinct, "id {id} out of the dense range");
        seen[id] = true;
    }
    assert!(seen.iter().all(|&s| s), "every dense id must be assigned");
    assert_eq!(interner.len(), expected_distinct);
}

/// Concurrent interning from several threads agrees on one id per view,
/// with the same dense guarantee — the sweep executor's workers rely on
/// exactly this.
#[test]
fn ids_stable_across_threads() {
    let instance = Instance::canonical(generators::cycle(6));
    let pool = view_pool(&instance, 2);
    let expected_distinct = distinct_count(&pool);
    let interner = ViewInterner::new();
    let threads = 4;
    let maps: Vec<HashMap<View, u32>> = std::thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let pool = &pool;
                let interner = &interner;
                scope.spawn(move || {
                    // Each thread walks the pool from a different offset so
                    // insertion races actually happen.
                    let mut map = HashMap::new();
                    let start = t * pool.len() / threads;
                    for i in 0..pool.len() {
                        let view = &pool[(start + i) % pool.len()];
                        map.insert(view.clone(), interner.intern(view.clone()));
                    }
                    map
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("interner thread panicked"))
            .collect()
    });
    assert_eq!(interner.len(), expected_distinct);
    for map in &maps[1..] {
        assert_eq!(map, &maps[0], "threads disagree on some view's id");
    }
    let snapshot = interner.snapshot();
    for (view, &id) in &maps[0] {
        assert_eq!(&snapshot[id as usize], view);
    }
}

/// The keyed fast path converges on the same ids as structural interning,
/// and distinct digit keys stay distinct.
#[test]
fn keyed_interning_matches_structural() {
    let instance = Instance::canonical(generators::star(3));
    let interner = ViewInterner::new();
    let order = [0usize, 1, 2, 3];
    for (digits_a, digits_b) in [((0, 0), (0, 1)), ((1, 0), (1, 1))] {
        let make = |bit0: usize, bit1: usize| {
            let labeling = (0..4)
                .map(|v| Certificate::from_byte(if v == 1 { bit0 } else { bit1 } as u8))
                .collect();
            instance.view(&labeling, 0, 1, IdMode::Anonymous)
        };
        let va = make(digits_a.0, digits_a.1);
        let vb = make(digits_b.0, digits_b.1);
        let key_a = digit_key(7, &order, &[digits_a.0, digits_a.1, 0, 0]).expect("4 nodes fit");
        let key_b = digit_key(7, &order, &[digits_b.0, digits_b.1, 0, 0]).expect("4 nodes fit");
        assert_ne!(key_a, key_b, "distinct digit vectors pack to distinct keys");
        let a = interner.intern_keyed(key_a, va.clone());
        let b = interner.intern_keyed(key_b, vb.clone());
        assert_eq!(interner.lookup_key(key_a), Some(a));
        assert_eq!(interner.lookup_key(key_b), Some(b));
        assert_eq!(interner.intern(va), a, "keyed and structural ids agree");
        assert_eq!(interner.intern(vb), b, "keyed and structural ids agree");
    }
}
