//! Differential suites: every property checker against its brute-force
//! oracle, at every execution mode (sequential and `PARITY_THREADS`-way
//! parallel) under all three sweep strategies (delta-stepping with
//! memoization, the per-item decode oracle, and the symmetry quotient).
//!
//! The CI conformance job runs this binary at `PARITY_THREADS` ∈ {1, 2, 4}.

use hiding_lcp_conformance::oracle::{self, ViewGraph};
use hiding_lcp_conformance::parity_threads;
use hiding_lcp_conformance::probes::{bits, LocalDiff, StrictDiff, TriangleSpotter, YesMan};
use hiding_lcp_core::decoder::Decoder;
use hiding_lcp_core::instance::{Instance, LabeledInstance};
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::language::KCol;
use hiding_lcp_core::lower::PortObliviousCycleDecoder;
use hiding_lcp_core::properties::completeness::check_completeness;
use hiding_lcp_core::properties::erasure::erase_and_run;
use hiding_lcp_core::properties::hiding::HidingCheck;
use hiding_lcp_core::properties::invariance::InvarianceCheck;
use hiding_lcp_core::properties::quantified::QuantifiedCheck;
use hiding_lcp_core::properties::soundness::{SoundnessCheck, SoundnessViolation};
use hiding_lcp_core::properties::strong::{StrongCheck, StrongViolation};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::verify::{
    Coverage, DynPropertyCheck, ExecMode, LazySweep, PropertyTag, SweepBudget, SweepOpts,
    SweepSession, Universe, VerificationReport,
};
use hiding_lcp_graph::algo::bipartite;
use hiding_lcp_graph::{generators, IdAssignment};
use proptest::prelude::*;

/// The execution modes every differential comparison runs under.
fn modes() -> [ExecMode; 2] {
    [ExecMode::Sequential, ExecMode::Parallel(parity_threads())]
}

/// All three sweep strategies, freshly constructed.
fn strategies() -> [SweepOpts; 3] {
    [
        SweepOpts::default(),
        SweepOpts::oracle(),
        SweepOpts::quotient(),
    ]
}

/// Runs `check` over `universe` at every mode × strategy and asserts all
/// verdicts equal `expected`.
fn assert_all_runs_match<C, V>(check: &C, universe: &Universe, expected: &V, what: &str)
where
    C: hiding_lcp_core::verify::PropertyCheck<Verdict = V>,
    V: PartialEq + std::fmt::Debug,
{
    for mode in modes() {
        for opts in strategies() {
            let report: VerificationReport<V> = SweepSession::over(universe)
                .mode(mode)
                .opts(opts)
                .run(check);
            assert!(
                report.errors.is_empty(),
                "{what}: sweep caught panics under {mode:?}"
            );
            assert_eq!(
                &report.verdict, expected,
                "{what}: engine disagrees with the oracle under {mode:?}"
            );
        }
    }
}

fn small_instances() -> Vec<Instance> {
    [
        generators::cycle(3),
        generators::cycle(4),
        generators::cycle(5),
        generators::path(4),
        generators::star(3),
        generators::complete(4),
    ]
    .into_iter()
    .map(Instance::canonical)
    .collect()
}

/// Certifies bipartite graphs with the 2-coloring as one-byte
/// certificates; declines everything else.
struct TwoColorProver;
impl Prover for TwoColorProver {
    fn name(&self) -> String {
        "two-color".into()
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        let coloring = hiding_lcp_graph::algo::coloring::lex_first_coloring(instance.graph(), 2)?;
        Some(
            coloring
                .iter()
                .map(|&c| Certificate::from_byte(c as u8))
                .collect(),
        )
    }
}

#[test]
fn completeness_matches_oracle() {
    // A mix of certifiable (even cycles, paths) and declined (odd cycles,
    // K4) instances, so both report branches are exercised.
    let instances = small_instances();
    let engine = check_completeness(&LocalDiff, &TwoColorProver, instances.clone());
    let reference = oracle::completeness(&LocalDiff, &TwoColorProver, &instances);
    assert_eq!(engine, reference);
    assert!(engine.passed >= 3, "even cycles and the path certify");
    assert!(!engine.failures.is_empty(), "odd cycles decline");

    // A decoder that rejects some certified node: NodeRejected paths.
    let engine = check_completeness(&StrictDiff, &TwoColorProver, instances.clone());
    assert_eq!(
        engine,
        oracle::completeness(&StrictDiff, &TwoColorProver, &instances)
    );
}

#[test]
fn soundness_matches_oracle() {
    for instance in small_instances() {
        let universe = Universe::all_labelings_of(instance.clone(), bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        for run in 0..3 {
            let (check, expected): (SoundnessCheck<'_, dyn Decoder>, _) = match run {
                0 => (
                    SoundnessCheck {
                        decoder: &LocalDiff,
                    },
                    oracle::soundness(&LocalDiff, &instance, &bits()),
                ),
                1 => (
                    SoundnessCheck { decoder: &YesMan },
                    oracle::soundness(&YesMan, &instance, &bits()),
                ),
                _ => (
                    SoundnessCheck {
                        decoder: &TriangleSpotter,
                    },
                    oracle::soundness(&TriangleSpotter, &instance, &bits()),
                ),
            };
            // The engine short-circuits at the first violation; the oracle
            // scans the same odometer order, so the witnesses agree. When
            // no violation exists both report the exhaustive count.
            let expected = match expected {
                Ok(_) => Ok(universe.len()),
                Err(v) => Err(v),
            };
            assert_all_runs_match(&check, &universe, &expected, "soundness");
        }
    }
}

#[test]
fn strong_matches_oracle() {
    let language = KCol::new(2);
    for instance in small_instances() {
        let universe = Universe::all_labelings_of(instance.clone(), bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        for run in 0..2 {
            let (check, expected): (StrongCheck<'_, dyn Decoder>, _) = match run {
                0 => (
                    StrongCheck {
                        decoder: &LocalDiff,
                        language: &language,
                    },
                    oracle::strong(&LocalDiff, 2, &instance, &bits()),
                ),
                _ => (
                    StrongCheck {
                        decoder: &YesMan,
                        language: &language,
                    },
                    oracle::strong(&YesMan, 2, &instance, &bits()),
                ),
            };
            let expected = match expected {
                Ok(_) => Ok(universe.len()),
                Err(v) => Err(v),
            };
            assert_all_runs_match(&check, &universe, &expected, "strong soundness");
        }
    }
}

/// The labeled items of an exhaustive binary universe, in universe order —
/// the oracle-side mirror of `Universe::all_labelings_of`.
fn exhaustive_labeled(instance: &Instance) -> Vec<LabeledInstance> {
    oracle::all_labelings(instance.graph().node_count(), &bits())
        .into_iter()
        .map(|l| instance.clone().with_labeling(l))
        .collect()
}

#[test]
fn hiding_matches_oracle() {
    for instance in [
        Instance::canonical(generators::cycle(4)),
        Instance::canonical(generators::path(3)),
    ] {
        for run in 0..2 {
            let universe =
                Universe::all_labelings_of(instance.clone(), bits(), Coverage::Exhaustive)
                    .expect("small universe fits");
            let items = exhaustive_labeled(&instance);
            let (decoder, what): (&dyn Decoder, _) = if run == 0 {
                (&LocalDiff, "hiding/local-diff")
            } else {
                (&YesMan, "hiding/yes-man")
            };
            let reference = ViewGraph::build(decoder, &items, bipartite::is_bipartite);
            for mode in modes() {
                for opts in strategies() {
                    let check = HidingCheck::new(decoder, &universe, 2, bipartite::is_bipartite);
                    let report = SweepSession::over(&universe)
                        .mode(mode)
                        .opts(opts)
                        .run(&check);
                    let (nbhd, verdict) = report.verdict;
                    assert_eq!(
                        nbhd.view_count(),
                        reference.views.len(),
                        "{what}: view census"
                    );
                    assert_eq!(
                        nbhd.self_loop_views().len(),
                        reference.self_loops.iter().filter(|&&l| l).count(),
                        "{what}: self-loop census"
                    );
                    assert_eq!(
                        verdict.is_hiding(),
                        reference.hiding(2),
                        "{what}: Lemma 3.2 verdict under {mode:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn quantified_matches_oracle() {
    let instance = Instance::canonical(generators::cycle(4));
    let universe = Universe::all_labelings_of(instance.clone(), bits(), Coverage::Exhaustive)
        .expect("16 labelings fit");
    let items = exhaustive_labeled(&instance);
    let probe_li = instance.clone().with_labeling(
        (0..4)
            .map(|v| Certificate::from_byte((v % 2) as u8))
            .collect(),
    );
    for run in 0..2 {
        let (decoder, what): (&dyn Decoder, _) = if run == 0 {
            (&LocalDiff, "quantified/local-diff")
        } else {
            (&YesMan, "quantified/yes-man")
        };
        let reference = ViewGraph::build(decoder, &items, bipartite::is_bipartite);
        let ref_unext = reference.unextractable(2);
        let ref_fraction = reference.hidden_fraction(decoder.radius(), &probe_li, 2);
        for mode in modes() {
            for opts in strategies() {
                let check = QuantifiedCheck::new(decoder, &universe, 2, bipartite::is_bipartite);
                let report = SweepSession::over(&universe)
                    .mode(mode)
                    .opts(opts)
                    .run(&check);
                let (nbhd, map) = report.verdict;
                assert_eq!(
                    map.unextractable_views(),
                    ref_unext.iter().filter(|&&b| b).count(),
                    "{what}: unextractable census under {mode:?}"
                );
                let fraction = map.hidden_fraction(&nbhd, &probe_li);
                assert!(
                    (fraction - ref_fraction).abs() < 1e-12,
                    "{what}: hidden fraction {fraction} vs oracle {ref_fraction}"
                );
            }
        }
    }
}

#[test]
fn erasure_matches_oracle_on_all_small_targets() {
    let honest = Instance::canonical(generators::cycle(6)).with_labeling(
        (0..6)
            .map(|v| Certificate::from_byte((v % 2) as u8))
            .collect(),
    );
    let mut targets: Vec<Vec<usize>> = vec![vec![]];
    targets.extend((0..6).map(|v| vec![v]));
    targets.extend((0..6).flat_map(|u| (u + 1..6).map(move |v| vec![u, v])));
    for t in &targets {
        for decoder in [&LocalDiff as &dyn Decoder, &StrictDiff] {
            assert_eq!(
                erase_and_run(decoder, &honest, t),
                oracle::erasure(decoder, &honest, t),
                "erasure outcome for targets {t:?}"
            );
        }
    }
}

/// Accepts iff the center's identifier is below 3 — id-sensitive, so
/// remappings produce real invariance violations.
struct SmallId;
impl Decoder for SmallId {
    fn name(&self) -> String {
        "small-id".into()
    }
    fn radius(&self) -> usize {
        0
    }
    fn id_mode(&self) -> hiding_lcp_core::view::IdMode {
        hiding_lcp_core::view::IdMode::Full
    }
    fn decide(&self, view: &hiding_lcp_core::view::View) -> hiding_lcp_core::decoder::Verdict {
        hiding_lcp_core::decoder::Verdict::from(view.center_id().expect("full mode") < 3)
    }
}

#[test]
fn invariance_matches_oracle() {
    let instance = Instance::canonical(generators::path(3));
    let labeling = Labeling::empty(3);
    let bound = instance.ids().bound();
    let variants: Vec<IdAssignment> = [
        vec![2, 1, 3], // permutation
        vec![3, 1, 2], // permutation
        vec![2, 4, 6], // order-preserving remap
        vec![5, 6, 7], // shifts every id past SmallId's threshold
    ]
    .into_iter()
    .map(|ids| IdAssignment::from_ids(ids, bound).expect("ids fit the canonical bound"))
    .collect();
    for run in 0..2 {
        let (decoder, what): (&dyn Decoder, _) = if run == 0 {
            (&LocalDiff, "invariance/anonymous")
        } else {
            (&SmallId, "invariance/id-sensitive")
        };
        let expected = oracle::invariance(decoder, &instance, &labeling, &variants);
        let check = InvarianceCheck::new(decoder, &instance, &labeling);
        let items: Vec<LabeledInstance> = variants
            .iter()
            .map(|ids| {
                LabeledInstance::new(
                    instance.replace_ids(ids.clone()).expect("ids fit"),
                    labeling.clone(),
                )
            })
            .collect();
        let verdict = LazySweep::labeled(Coverage::Sampled)
            .run_labeled(&check, items)
            .verdict;
        assert_eq!(verdict, expected, "{what}");
        if run == 0 {
            assert_eq!(verdict, Ok(()), "anonymous decoders are invariant");
        } else {
            assert!(verdict.is_err(), "the shifted variant flips node 0");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every port-oblivious cycle decoder (all 64 truth tables) is
    /// sound-or-not exactly as the brute force says, on both an even and
    /// an odd cycle, under every mode × strategy.
    #[test]
    fn cycle_decoder_soundness_parity(code in 0u8..64) {
        let decoder = PortObliviousCycleDecoder::from_code(code);
        for n in [4usize, 5] {
            let instance = Instance::canonical(generators::cycle(n));
            let universe = Universe::all_labelings_of(instance.clone(), bits(), Coverage::Exhaustive)
                .expect("small universe fits");
            let expected = match oracle::soundness(&decoder, &instance, &bits()) {
                Ok(_) => Ok(universe.len()),
                Err(v) => Err(v),
            };
            let check = SoundnessCheck { decoder: &decoder };
            for mode in modes() {
                for opts in strategies() {
                    let report = SweepSession::over(&universe).mode(mode).opts(opts).run(&check);
                    prop_assert_eq!(&report.verdict, &expected, "code {} on C{}", code, n);
                }
            }
        }
    }

    /// Random labelings on random-ish small cycles: per-node verdict
    /// vectors from the engine-facing view pipeline equal the
    /// by-definition decode.
    #[test]
    fn per_node_verdicts_match_definition(code in 0u8..64, seed in 0u64..1024) {
        let n = 3 + (seed % 4) as usize;
        let instance = Instance::canonical(generators::cycle(n));
        let labeling: Labeling = (0..n)
            .map(|v| Certificate::from_byte(((seed >> v) & 1) as u8))
            .collect();
        let decoder = PortObliviousCycleDecoder::from_code(code);
        let li = instance.clone().with_labeling(labeling.clone());
        let engine = hiding_lcp_core::decoder::run(&decoder, &li);
        let reference = oracle::run_by_definition(&decoder, &instance, &labeling);
        prop_assert_eq!(engine, reference);
    }
}

// ---------------------------------------------------------------------------
// Recorder-attached differentials: the telemetry layer rides every
// mode × strategy run without changing a verdict, and the counters it
// collects obey the engine's structural invariants.
// ---------------------------------------------------------------------------

use hiding_lcp_core::verify::{
    ItemCtx, MetricsRecorder, PropertyCheck, SweepOutcome, SweepStrategy, SymmetrySpec,
    UniverseItem,
};

/// Asserts the walk/orbit/memo accounting of one recorded run. Holds for
/// every strategy: non-quotient walks inspect with multiplicity one, a
/// *complete* quotient walk re-weights to exactly the universe size, and
/// every delta-channel decision consults the digit-key memo exactly once.
fn assert_counter_invariants(
    recorder: &MetricsRecorder,
    universe: &Universe,
    opts: SweepOpts,
    short_circuited: bool,
    members: usize,
    what: &str,
) {
    let snap = recorder.snapshot();
    let get = |name: &str| snap.get(name).unwrap_or(0);
    assert_eq!(
        get("items_inspected") + get("items_orbit_skipped"),
        get("items_walked"),
        "{what}: inspected + skipped tile the walk"
    );
    if opts.strategy == SweepStrategy::Quotient && !short_circuited {
        assert_eq!(
            get("items_walked"),
            (universe.len() * members) as u64,
            "{what}: complete walk covers the space once per member"
        );
        assert_eq!(
            get("orbit_multiplicity"),
            (universe.len() * members) as u64,
            "{what}: orbit multiplicities re-weight to |Sigma|^n per member"
        );
    } else if opts.strategy != SweepStrategy::Quotient {
        assert_eq!(
            get("orbit_multiplicity"),
            get("items_inspected"),
            "{what}: non-quotient items carry multiplicity one"
        );
    }
    if opts.memo {
        assert_eq!(
            get("memo_hits") + get("memo_misses"),
            get("verdict_decisions"),
            "{what}: every decision consults the memo exactly once"
        );
    }
    // Verdict channels belong to the delta path: the decode oracle never
    // touches them, and quotient-skipped items never reach them.
    if opts.strategy == SweepStrategy::DecodeOracle {
        assert_eq!(
            get("verdict_refreshes") + get("verdict_readbacks"),
            0,
            "{what}: the oracle path has no channel traffic"
        );
    } else {
        assert_eq!(
            get("verdict_refreshes") + get("verdict_readbacks"),
            get("items_inspected"),
            "{what}: every inspected member-evaluation refreshes or reads back"
        );
    }
}

/// Re-runs the soundness and strong differentials with a recorder
/// attached: same oracle verdicts at every mode × strategy, plus the
/// counter invariants on each run.
#[test]
fn recorded_soundness_and_strong_match_oracle_with_invariants() {
    let language = KCol::new(2);
    for instance in small_instances() {
        let universe = Universe::all_labelings_of(instance.clone(), bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let sound_expected = match oracle::soundness(&LocalDiff, &instance, &bits()) {
            Ok(_) => Ok(universe.len()),
            Err(v) => Err(v),
        };
        let strong_expected = match oracle::strong(&YesMan, 2, &instance, &bits()) {
            Ok(_) => Ok(universe.len()),
            Err(v) => Err(v),
        };
        for mode in modes() {
            for opts in strategies() {
                let recorder = MetricsRecorder::new();
                let check = SoundnessCheck {
                    decoder: &LocalDiff,
                };
                let report = SweepSession::over(&universe)
                    .mode(mode)
                    .opts(opts)
                    .metrics(&recorder)
                    .run(&check);
                assert_eq!(report.verdict, sound_expected, "recorded soundness");
                assert_counter_invariants(
                    &recorder,
                    &universe,
                    opts,
                    report.short_circuited,
                    1,
                    "recorded soundness",
                );

                let recorder = MetricsRecorder::new();
                let check = StrongCheck {
                    decoder: &YesMan,
                    language: &language,
                };
                let report = SweepSession::over(&universe)
                    .mode(mode)
                    .opts(opts)
                    .metrics(&recorder)
                    .run(&check);
                assert_eq!(report.verdict, strong_expected, "recorded strong");
                assert_counter_invariants(
                    &recorder,
                    &universe,
                    opts,
                    report.short_circuited,
                    1,
                    "recorded strong",
                );
            }
        }
    }
}

/// A probe declaring full symmetry (port automorphisms plus one
/// interchangeable certificate class), so the quotient really engages.
struct OrbitProbe {
    k: usize,
}

impl PropertyCheck for OrbitProbe {
    type Partial = u64;
    type Verdict = u64;

    fn inspect(&self, _item: &UniverseItem<'_>, ctx: &ItemCtx<'_>) -> Option<u64> {
        Some(ctx.multiplicity())
    }

    fn symmetry_class(&self, _alphabet: &[Certificate]) -> Option<SymmetrySpec> {
        Some(SymmetrySpec {
            automorphisms: true,
            alphabet_classes: Some(vec![0; self.k]),
        })
    }

    fn reduce(
        &self,
        _universe: &Universe,
        partials: Vec<(usize, u64)>,
        _outcome: &SweepOutcome,
    ) -> u64 {
        partials.into_iter().map(|(_, m)| m).sum()
    }
}

/// The recorded quotient walk over a rotation-symmetric cycle pins the
/// partition exactly: `items_walked == |Sigma|^n`, the skipped items are
/// the non-canonical representatives, and the surviving orbits re-weight
/// to the full space — at both execution modes.
#[test]
fn recorded_quotient_walk_partitions_the_labeling_space() {
    for n in 4usize..=6 {
        let g = generators::cycle(n);
        let ports = hiding_lcp_graph::ports::cycle_symmetric(&g);
        let instance = Instance::new(g, ports, IdAssignment::canonical(n))
            .expect("symmetric cycle ports are valid");
        let universe = Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let check = OrbitProbe { k: 2 };
        for mode in modes() {
            let recorder = MetricsRecorder::new();
            let report = SweepSession::over(&universe)
                .mode(mode)
                .opts(SweepOpts::quotient())
                .metrics(&recorder)
                .run(&check);
            let snap = recorder.snapshot();
            let get = |name: &str| snap.get(name).unwrap_or(0);
            assert_eq!(get("items_walked"), 1 << n, "C{n}: walk covers |Sigma|^n");
            assert!(get("items_orbit_skipped") > 0, "C{n}: the quotient engaged");
            assert_eq!(
                get("items_inspected") + get("items_orbit_skipped"),
                get("items_walked"),
                "C{n}: partition tiles"
            );
            assert_eq!(
                get("orbit_multiplicity"),
                1 << n,
                "C{n}: multiplicities re-weight to the space"
            );
            assert_eq!(get("quotient_blocks"), 1, "C{n}: one active block");
            assert_eq!(report.verdict, 1 << n, "C{n}: reduction agrees");
        }
    }
}

/// The two-channel panel differential with a recorder attached: member
/// verdicts still match the plain panel, and the channel accounting
/// (memo, refresh/readback) holds member-summed.
#[test]
fn recorded_panel_matches_plain_panel_with_invariants() {
    let d1 = PortObliviousCycleDecoder::from_code(0);
    let d2 = PortObliviousCycleDecoder::from_code(63);
    let two_col = KCol::new(2);
    let universe = panel_universe();
    let members = two_channel_panel(&d1, &d2, &two_col);
    for mode in modes() {
        for opts in strategies() {
            let plain = SweepSession::over(&universe)
                .mode(mode)
                .opts(opts)
                .run_panel(&members);
            let recorder = MetricsRecorder::new();
            let recorded = SweepSession::over(&universe)
                .mode(mode)
                .opts(opts)
                .metrics(&recorder)
                .run_panel(&members);
            for (a, b) in plain.members.iter().zip(&recorded.members) {
                assert_eq!(a.checked, b.checked, "{}", a.label);
                assert_eq!(a.short_circuited, b.short_circuited, "{}", a.label);
                assert_eq!(a.verdict.passed, b.verdict.passed, "{}", a.label);
                assert_eq!(a.verdict.detail, b.verdict.detail, "{}", a.label);
            }
            // The complete-walk pin only applies when every member rode
            // the walk to the end.
            let any_stopped = recorded.members.iter().any(|m| m.short_circuited);
            assert_counter_invariants(
                &recorder,
                &universe,
                opts,
                any_stopped,
                members.len(),
                "recorded panel",
            );
        }
    }
}

/// Builds the standard two-channel panel: soundness and strong share
/// `d1`'s verdict channel, a second soundness member rides `d2`'s. Both
/// decoders are non-ZST (`PortObliviousCycleDecoder` stores its code), so
/// the two channel keys are genuinely distinct addresses.
fn two_channel_panel<'a>(
    d1: &'a PortObliviousCycleDecoder,
    d2: &'a PortObliviousCycleDecoder,
    two_col: &'a KCol,
) -> Vec<DynPropertyCheck<'a>> {
    vec![
        DynPropertyCheck::new(
            PropertyTag::Soundness,
            "soundness-d1",
            SoundnessCheck { decoder: d1 },
        )
        .with_channel(d1),
        DynPropertyCheck::new(
            PropertyTag::Strong,
            "strong-d1",
            StrongCheck {
                decoder: d1,
                language: two_col,
            },
        )
        .with_channel(d1),
        DynPropertyCheck::new(
            PropertyTag::Soundness,
            "soundness-d2",
            SoundnessCheck { decoder: d2 },
        )
        .with_channel(d2),
    ]
}

fn panel_universe() -> Universe {
    let blocks = [
        generators::cycle(4),
        generators::cycle(5),
        generators::path(4),
    ]
    .into_iter()
    .map(|g| {
        hiding_lcp_core::verify::Block::new(
            Instance::canonical(g),
            hiding_lcp_core::verify::LabelSource::All { alphabet: bits() },
        )
    })
    .collect();
    Universe::new(blocks, Coverage::Exhaustive).expect("small universe fits")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused panel is the overlay of its members' own sweeps, at
    /// every execution mode under both sweep strategies: identical
    /// verdicts, member-level checked counts, short-circuit flags and
    /// coverage — including across two distinct verdict channels.
    #[test]
    fn panel_members_match_individual_sweeps(c1 in 0u8..64, c2 in 0u8..64) {
        let d1 = PortObliviousCycleDecoder::from_code(c1);
        let d2 = PortObliviousCycleDecoder::from_code(c2);
        let two_col = KCol::new(2);
        let universe = panel_universe();
        let members = two_channel_panel(&d1, &d2, &two_col);
        let sound1 = SoundnessCheck { decoder: &d1 };
        let strong1 = StrongCheck { decoder: &d1, language: &two_col };
        let sound2 = SoundnessCheck { decoder: &d2 };
        for mode in modes() {
            for opts in strategies() {
                let panel = SweepSession::over(&universe)
                    .mode(mode)
                    .opts(opts)
                    .run_panel(&members);
                let solo = SweepSession::over(&universe)
                    .mode(ExecMode::Sequential)
                    .opts(opts);
                let solo_sound1 = solo.run(&sound1);
                let solo_strong1 = solo.run(&strong1);
                let solo_sound2 = solo.run(&sound2);
                prop_assert_eq!(
                    panel.members[0].verdict.get::<Result<usize, SoundnessViolation>>().unwrap(),
                    &solo_sound1.verdict,
                    "soundness-d1 under {:?}", mode
                );
                prop_assert_eq!(
                    panel.members[1].verdict.get::<Result<usize, StrongViolation>>().unwrap(),
                    &solo_strong1.verdict,
                    "strong-d1 under {:?}", mode
                );
                prop_assert_eq!(
                    panel.members[2].verdict.get::<Result<usize, SoundnessViolation>>().unwrap(),
                    &solo_sound2.verdict,
                    "soundness-d2 under {:?}", mode
                );
                for (member, solo_checked, solo_sc, solo_cov) in [
                    (&panel.members[0], solo_sound1.checked, solo_sound1.short_circuited, solo_sound1.coverage),
                    (&panel.members[1], solo_strong1.checked, solo_strong1.short_circuited, solo_strong1.coverage),
                    (&panel.members[2], solo_sound2.checked, solo_sound2.short_circuited, solo_sound2.coverage),
                ] {
                    prop_assert_eq!(member.checked, solo_checked, "{} under {:?}", member.label, mode);
                    prop_assert_eq!(member.short_circuited, solo_sc, "{} under {:?}", member.label, mode);
                    prop_assert_eq!(member.coverage, solo_cov, "{} under {:?}", member.label, mode);
                    prop_assert!(member.errors.is_empty(), "{} erred under {:?}", member.label, mode);
                }
            }
        }
    }

    /// A budget-sliced panel chain, resumed to completion, reproduces the
    /// uninterrupted panel bit-for-bit — per member and per channel — in
    /// every mode, under both strategies.
    #[test]
    fn budgeted_panel_resume_round_trip(c1 in 0u8..64, c2 in 0u8..64, step in 1usize..17) {
        let d1 = PortObliviousCycleDecoder::from_code(c1);
        let d2 = PortObliviousCycleDecoder::from_code(c2);
        let two_col = KCol::new(2);
        let universe = panel_universe();
        let members = two_channel_panel(&d1, &d2, &two_col);
        for mode in modes() {
            for opts in strategies() {
                let whole = SweepSession::over(&universe)
                    .mode(mode)
                    .opts(opts)
                    .run_panel(&members);
                let budget = SweepBudget::unlimited().with_max_items(step);
                let session = SweepSession::over(&universe)
                    .mode(mode)
                    .budget(budget)
                    .opts(opts);
                let mut state = session.run_panel_budgeted(&members);
                let mut slices = 1usize;
                while let Some(token) = state.resume.take() {
                    state = session.resume_panel(&members, token);
                    slices += 1;
                    prop_assert!(slices <= universe.len() + 2, "resume chain must terminate");
                }
                let resumed = state.report;
                prop_assert_eq!(whole.evidence.checked, resumed.evidence.checked);
                prop_assert_eq!(whole.evidence.short_circuited, resumed.evidence.short_circuited);
                prop_assert!(!resumed.evidence.interrupted);
                for (a, b) in whole.members.iter().zip(&resumed.members) {
                    prop_assert_eq!(a.checked, b.checked, "{} under {:?}", &a.label, mode);
                    prop_assert_eq!(a.short_circuited, b.short_circuited);
                    prop_assert_eq!(a.coverage, b.coverage);
                    prop_assert!(!b.interrupted);
                    prop_assert_eq!(a.verdict.passed, b.verdict.passed);
                    prop_assert_eq!(
                        a.verdict.get::<Result<usize, SoundnessViolation>>(),
                        b.verdict.get::<Result<usize, SoundnessViolation>>()
                    );
                    prop_assert_eq!(
                        a.verdict.get::<Result<usize, StrongViolation>>(),
                        b.verdict.get::<Result<usize, StrongViolation>>()
                    );
                }
            }
        }
    }
}
