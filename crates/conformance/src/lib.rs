//! Theorem conformance kit: the correctness tooling that keeps the
//! engine's cleverness honest.
//!
//! The production crates decide every paper property through three layers
//! of machinery — universes, the parallel sweep executor, skeleton caches,
//! delta-stepped verdict memoization. Nothing *inside* those layers can
//! certify them: each checker is its own ground truth. This crate supplies
//! the independent half of every comparison:
//!
//! * [`oracle`] — brute-force reimplementations of all seven properties
//!   (completeness, soundness, strong, hiding, erasure, invariance,
//!   quantified), written straight off the paper's definitions with no
//!   `Universe`, executor or interner involved;
//! * [`meta`] — metamorphic transforms (graph isomorphism / port
//!   relabeling, label-alphabet permutation, identifier remapping,
//!   disjoint union) under which checker verdicts must be invariant or
//!   compose predictably;
//! * [`probes`] — the named battery of conformance probes: each one is an
//!   ordinary assertion-backed function, runnable standalone by the test
//!   suites *and* replayed against every seeded mutant by the mutation
//!   battery;
//! * [`catalog`] — the list of seeded mutants (compiled into the
//!   production crates only under `--cfg conformance_mutants`) with the
//!   coverage story the battery enforces: every mutant dies.

pub mod catalog;
pub mod meta;
pub mod oracle;
pub mod probes;

/// Worker-thread count for engine-parity comparisons, from the
/// `PARITY_THREADS` environment variable (default 3). The CI conformance
/// job runs the suites at 1, 2 and 4.
pub fn parity_threads() -> usize {
    std::env::var("PARITY_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(3)
}
