//! The mutant catalog and the battery that runs it.
//!
//! [`MUTANTS`] lists every seeded mutant in the production crates — name,
//! host crate, mutated site, and the probes expected to kill it. The
//! catalog is the human-readable coverage contract; [`run_battery`]
//! (compiled only under `--cfg conformance_mutants`, like the mutants
//! themselves) is its enforcement: activate each mutant, replay the whole
//! probe list, and demand at least one probe panics. A surviving mutant
//! is a hole in the probe battery, and the run fails naming it.

/// One seeded mutant: where it lives and which probes are expected to
/// notice it.
///
/// `expected_killers` documents intent; the battery verifies the weaker
/// (and more important) property that *some* probe kills the mutant, and
/// additionally warns when none of the expected killers is among the
/// actual ones — that means coverage drifted even though it didn't break.
pub struct Mutant {
    /// Registry name, passed to `mutants::set_active`.
    pub name: &'static str,
    /// Crate hosting the mutated code.
    pub host: &'static str,
    /// The decision the mutant corrupts.
    pub site: &'static str,
    /// Probe names (from [`crate::probes::ALL`]) expected to kill it.
    pub expected_killers: &'static [&'static str],
}

/// Every seeded mutant across the workspace. The battery fails if any
/// entry survives the probe list.
pub const MUTANTS: &[Mutant] = &[
    Mutant {
        name: "view_radius_shrink",
        host: "hiding-lcp-core",
        site: "view skeletons assembled at radius r-1",
        expected_killers: &["view_radius_structure"],
    },
    Mutant {
        name: "delta_stale_digit",
        host: "hiding-lcp-core",
        site: "odometer step updates digit but not decoded labeling",
        expected_killers: &["delta_oracle_parity_cycles", "memo_digit_slots"],
    },
    Mutant {
        name: "delta_dropped_resync",
        host: "hiding-lcp-core",
        site: "verdict refresh patches from a stale scratch after a resync",
        expected_killers: &["delta_mixed_blocks_resync", "delta_budget_resume_parity"],
    },
    Mutant {
        name: "delta_ball_misindex",
        host: "hiding-lcp-core",
        site: "ball inversion skips each skeleton's center node",
        expected_killers: &["delta_oracle_parity_cycles"],
    },
    Mutant {
        name: "memo_key_class_collision",
        host: "hiding-lcp-core",
        site: "verdict memo keys every node with skeleton class 0",
        expected_killers: &["delta_mixed_blocks_resync"],
    },
    Mutant {
        name: "digit_key_slot_alias",
        host: "hiding-lcp-core",
        site: "digit-key packing aliases digits past slot 2 onto slot 2",
        expected_killers: &["memo_digit_slots"],
    },
    Mutant {
        name: "interner_always_fresh",
        host: "hiding-lcp-core",
        site: "view interner mints a fresh id on every call",
        expected_killers: &["interner_identity"],
    },
    Mutant {
        name: "checked_off_by_one",
        host: "hiding-lcp-core",
        site: "short-circuited sweep reports stop_at items checked",
        expected_killers: &["short_circuit_count"],
    },
    Mutant {
        name: "chunk_claim_overlap",
        host: "hiding-lcp-core",
        site: "parallel cursor advances one less than the processed chunk",
        expected_killers: &["parallel_chunk_census"],
    },
    Mutant {
        name: "hiding_partial_conclusive",
        host: "hiding-lcp-core",
        site: "partial universe treated as the exhaustive Lemma 3.1 sweep",
        expected_killers: &["hiding_partial_inconclusive"],
    },
    Mutant {
        name: "invariance_skips_node0",
        host: "hiding-lcp-core",
        site: "invariance inspection starts at node 1",
        expected_killers: &["invariance_checks_node0"],
    },
    Mutant {
        name: "erasure_counts_accepts",
        host: "hiding-lcp-core",
        site: "erasure trials report accepting instead of rejecting counts",
        expected_killers: &["erasure_counts_rejections"],
    },
    Mutant {
        name: "completeness_bits_min",
        host: "hiding-lcp-core",
        site: "completeness aggregates min certificate length, not max",
        expected_killers: &["completeness_reports_max_bits"],
    },
    Mutant {
        name: "strong_drops_last_acceptor",
        host: "hiding-lcp-core",
        site: "strong soundness drops the highest accepting node",
        expected_killers: &["strong_keeps_all_acceptors"],
    },
    Mutant {
        name: "nbhd_selfloop_dropped",
        host: "hiding-lcp-core",
        site: "neighborhood graph forgets self-loops (length-1 odd walks)",
        expected_killers: &["hiding_selfloop_walk"],
    },
    Mutant {
        name: "fault_salt_reuse",
        host: "hiding-lcp-core",
        site: "duplication decisions reuse the drop salt",
        expected_killers: &["fault_salts_independent"],
    },
    Mutant {
        name: "degradation_salt_swap",
        host: "hiding-lcp-core",
        site: "honest and adversarial trials swap plan-seed salts",
        expected_killers: &["degradation_matches_oracle"],
    },
    Mutant {
        name: "panel_channel_swap",
        host: "hiding-lcp-core",
        site: "panel member reads the next member's verdict channel",
        expected_killers: &["panel_channel_isolation"],
    },
    Mutant {
        name: "panel_frontier_off_by_one",
        host: "hiding-lcp-core",
        site: "panel short-circuit frontier records stop index plus one",
        expected_killers: &["panel_member_frontiers"],
    },
    Mutant {
        name: "orbit_mult_off_by_one",
        host: "hiding-lcp-core",
        site: "symmetry quotient undercounts every nontrivial orbit by one",
        expected_killers: &["orbit_partition_weighted"],
    },
    Mutant {
        name: "orbit_reject_inverted",
        host: "hiding-lcp-core",
        site: "canonical test keeps non-minimal orbit members, drops minima",
        expected_killers: &["orbit_partition_weighted"],
    },
    Mutant {
        name: "orbit_drop_generator",
        host: "hiding-lcp-graph",
        site: "port_automorphisms omits one group element",
        expected_killers: &["orbit_partition_weighted"],
    },
    Mutant {
        name: "dsatur_no_fresh_color",
        host: "hiding-lcp-graph",
        site: "DSATUR never opens a fresh color beyond the first",
        expected_killers: &["coloring_matches_bruteforce"],
    },
    Mutant {
        name: "dsatur_sat_undo_dropped",
        host: "hiding-lcp-graph",
        site: "DSATUR backtracking keeps a stale saturation bit",
        expected_killers: &["coloring_matches_bruteforce"],
    },
    Mutant {
        name: "iso_degree_sequence_only",
        host: "hiding-lcp-graph",
        site: "are_isomorphic degenerates to degree-sequence comparison",
        expected_killers: &["isomorphism_beyond_degrees"],
    },
    Mutant {
        name: "induced_drops_edge",
        host: "hiding-lcp-graph",
        site: "Graph::induced silently omits one edge",
        expected_killers: &["induced_subgraph_exact"],
    },
    Mutant {
        name: "telemetry_counter_drop",
        host: "hiding-lcp-core",
        site: "MetricsRecorder::add drops items_orbit_skipped increments",
        expected_killers: &["telemetry_quotient_partition"],
    },
    Mutant {
        name: "span_unbalanced_exit",
        host: "hiding-lcp-core",
        site: "MetricsRecorder::span_exit returns before closing the span",
        expected_killers: &["telemetry_span_balance"],
    },
    Mutant {
        name: "shard_range_overlap",
        host: "hiding-lcp-core",
        site: "non-final shard ranges annex the successor's first item",
        expected_killers: &["shard_merge_byte_identical"],
    },
    Mutant {
        name: "shard_merge_drop_counters",
        host: "hiding-lcp-core",
        site: "counter merge folds only the first shard's stable counters",
        expected_killers: &["shard_counter_sums"],
    },
];

/// The catalog must agree with the probe battery: every expected killer
/// names a real probe, every probe is someone's expected killer, and
/// names are unique. Checked by the clean-build suite so catalog drift is
/// caught without the mutant cfg.
pub fn check_catalog_consistency() {
    let probe_names: Vec<&str> = crate::probes::ALL.iter().map(|(n, _)| *n).collect();
    let mut seen = Vec::new();
    for m in MUTANTS {
        assert!(
            !seen.contains(&m.name),
            "duplicate catalog entry for mutant `{}`",
            m.name
        );
        seen.push(m.name);
        assert!(
            !m.expected_killers.is_empty(),
            "mutant `{}` lists no expected killers",
            m.name
        );
        for k in m.expected_killers {
            assert!(
                probe_names.contains(k),
                "mutant `{}` expects unknown probe `{k}`",
                m.name
            );
        }
    }
    for p in &probe_names {
        assert!(
            MUTANTS.iter().any(|m| m.expected_killers.contains(p)),
            "probe `{p}` is nobody's expected killer — dead weight or missing catalog entry"
        );
    }
}

/// The outcome of one mutant's battery round.
#[cfg(conformance_mutants)]
pub struct KillRecord {
    /// The mutant this round armed.
    pub mutant: &'static str,
    /// Probes that panicked while the mutant was active.
    pub killers: Vec<&'static str>,
    /// Whether any expected killer is among the actual killers.
    pub expected_hit: bool,
}

/// Runs every probe against every mutant and returns the kill matrix.
///
/// Process-global and single-threaded by design: the mutant registry is
/// one shared switch, so the battery must own the whole process (its test
/// lives alone in its own binary). Probe panics are the kill signal; the
/// default panic hook is silenced for the duration so the matrix, not a
/// hook backtrace per kill, is the output.
#[cfg(conformance_mutants)]
pub fn run_battery() -> Vec<KillRecord> {
    use std::panic;

    check_catalog_consistency();
    hiding_lcp_core::mutants::set_active(None);
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut matrix = Vec::with_capacity(MUTANTS.len());
    for mutant in MUTANTS {
        hiding_lcp_core::mutants::set_active(Some(mutant.name));
        let mut killers = Vec::new();
        for (name, probe) in crate::probes::ALL {
            if panic::catch_unwind(panic::AssertUnwindSafe(probe)).is_err() {
                killers.push(*name);
            }
        }
        hiding_lcp_core::mutants::set_active(None);
        let expected_hit = killers.iter().any(|k| mutant.expected_killers.contains(k));
        matrix.push(KillRecord {
            mutant: mutant.name,
            killers,
            expected_hit,
        });
    }
    panic::set_hook(prev_hook);
    matrix
}

/// Renders the kill matrix as the battery's report: one line per mutant,
/// its killers, and a flag when only unexpected probes did the killing.
#[cfg(conformance_mutants)]
pub fn render_matrix(matrix: &[KillRecord]) -> String {
    let width = MUTANTS.iter().map(|m| m.name.len()).max().unwrap_or(0);
    let mut out = String::from("mutation kill matrix\n");
    for record in matrix {
        let status = if record.killers.is_empty() {
            "SURVIVED"
        } else if record.expected_hit {
            "killed"
        } else {
            "killed (unexpected probe)"
        };
        out.push_str(&format!(
            "  {:width$}  {status:8}  {}\n",
            record.mutant,
            record.killers.join(", "),
        ));
    }
    out
}
