//! Metamorphic transforms: ways of rewriting an instance under which
//! checker verdicts must be invariant or compose predictably.
//!
//! Each transform preserves exactly the structure a decoder is allowed to
//! observe, so any verdict drift after applying one is a bug in the
//! machinery, not in the decoder:
//!
//! * [`permuted`] renames nodes while carrying ports and identifiers
//!   along — the views of corresponding nodes are *equal*, so verdict
//!   vectors permute and aggregate verdicts (soundness counts, strong
//!   violations, hiding) are invariant;
//! * [`map_labels`] pushes a certificate bijection through a labeling —
//!   equality-pattern decoders (the paper's constructions compare
//!   certificates, they don't interpret them) keep every verdict;
//! * identifier remapping is already a production surface
//!   ([`Instance::replace_ids`]); the metamorphic suite drives it with
//!   explicit assignments to pin anonymity/order-invariance claims;
//! * [`disjoint_union`] composes two labeled instances side by side —
//!   radius-r views never cross components, so the union's verdict vector
//!   is the concatenation of the parts'.

use hiding_lcp_core::instance::{Instance, LabeledInstance};
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_graph::graph::Graph;
use hiding_lcp_graph::{IdAssignment, PortAssignment};

/// Renames node `v` to `perm[v]`, carrying edges, port orders and
/// identifiers along. The image instance is isomorphic to the original
/// *as a ported, identified graph*: node `perm[v]`'s view there equals
/// node `v`'s view here, for every radius and id mode.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n`.
pub fn permuted(instance: &Instance, perm: &[usize]) -> Instance {
    let g = instance.graph();
    let n = g.node_count();
    assert_eq!(perm.len(), n, "permutation covers every node");
    let mut image = Graph::new(n);
    for (u, v) in g.edges() {
        image
            .add_edge(perm[u], perm[v])
            .expect("permutation is injective");
    }
    // Port order of the renamed node = the original node's neighbor
    // order, renamed.
    let mut order = vec![Vec::new(); n];
    for v in 0..n {
        // Ports are 1-based, as in the paper.
        order[perm[v]] = (1..=instance.ports().degree(v))
            .map(|p| perm[instance.ports().neighbor_at(v, p as u16)])
            .collect();
    }
    let ports = PortAssignment::from_order(&image, order).expect("renamed order is a valid order");
    let mut ids = vec![0u64; n];
    for v in 0..n {
        ids[perm[v]] = instance.ids().id(v);
    }
    let ids =
        IdAssignment::from_ids(ids, instance.ids().bound()).expect("renamed ids stay injective");
    Instance::new(image, ports, ids).expect("renamed assignments fit the renamed graph")
}

/// The labeling matching [`permuted`]: node `perm[v]` receives `v`'s
/// certificate.
pub fn permuted_labeling(labeling: &Labeling, perm: &[usize]) -> Labeling {
    let n = labeling.node_count();
    let mut out = vec![Certificate::empty(); n];
    for v in 0..n {
        out[perm[v]] = labeling.label(v).clone();
    }
    Labeling::new(out)
}

/// Applies a certificate map to every node's label.
pub fn map_labels(labeling: &Labeling, f: impl Fn(&Certificate) -> Certificate) -> Labeling {
    labeling.as_slice().iter().map(f).collect()
}

/// The transposition swapping certificates `a` and `b` (other
/// certificates pass through) — the canonical alphabet bijection for a
/// binary alphabet.
pub fn swap_certs(labeling: &Labeling, a: &Certificate, b: &Certificate) -> Labeling {
    map_labels(labeling, |c| {
        if c == a {
            b.clone()
        } else if c == b {
            a.clone()
        } else {
            c.clone()
        }
    })
}

/// Places `a` and `b` side by side: `a`'s nodes keep their indices, `b`'s
/// shift up by `a`'s node count. Ports are preserved per side;
/// identifiers stay injective by offsetting `b`'s by `a`'s bound;
/// labelings concatenate. No edge crosses the seam, so every node's view
/// (any radius) is exactly its view in its own component.
pub fn disjoint_union(a: &LabeledInstance, b: &LabeledInstance) -> LabeledInstance {
    let na = a.graph().node_count();
    let nb = b.graph().node_count();
    let graph = a.graph().disjoint_union(b.graph());
    let mut order = Vec::with_capacity(na + nb);
    for v in 0..na {
        order.push(
            (1..=a.instance().ports().degree(v))
                .map(|p| a.instance().ports().neighbor_at(v, p as u16))
                .collect::<Vec<_>>(),
        );
    }
    for v in 0..nb {
        order.push(
            (1..=b.instance().ports().degree(v))
                .map(|p| na + b.instance().ports().neighbor_at(v, p as u16))
                .collect::<Vec<_>>(),
        );
    }
    let ports = PortAssignment::from_order(&graph, order).expect("concatenated order is valid");
    let bound = a.instance().ids().bound() + b.instance().ids().bound();
    let ids: Vec<u64> = (0..na)
        .map(|v| a.instance().ids().id(v))
        .chain((0..nb).map(|v| a.instance().ids().bound() + b.instance().ids().id(v)))
        .collect();
    let ids = IdAssignment::from_ids(ids, bound).expect("offset ids stay injective");
    let instance = Instance::new(graph, ports, ids).expect("union assignments fit");
    let labeling = a
        .labeling()
        .as_slice()
        .iter()
        .chain(b.labeling().as_slice())
        .cloned()
        .collect();
    instance.with_labeling(labeling)
}
