//! The named conformance probes.
//!
//! Each probe is an ordinary `fn()` that asserts one conformance fact —
//! most differentially against [`crate::oracle`], a few structurally
//! (facts like "a radius-1 view of a 5-cycle has exactly 3 nodes" that
//! both the production code *and* the oracle would get wrong together if
//! the shared view layer drifted). The test suites run every probe on the
//! clean build via [`ALL`]; the mutation battery
//! ([`crate::catalog::run_battery`]) replays the same list against each
//! seeded mutant and demands at least one probe panics.
//!
//! Probes must therefore be deterministic, self-contained and quick: the
//! battery runs the whole list once per mutant.

use crate::oracle;
use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::{Instance, LabeledInstance};
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::language::KCol;
use hiding_lcp_core::lower::PortObliviousCycleDecoder;
use hiding_lcp_core::nbhd::NbhdGraph;
use hiding_lcp_core::network::degradation::degradation_sweep;
use hiding_lcp_core::network::{FaultPlan, FaultRates};
use hiding_lcp_core::properties::completeness::check_completeness;
use hiding_lcp_core::properties::erasure::{erase_and_run, random_erasure_trials};
use hiding_lcp_core::properties::hiding::{
    check_hiding, verify_hiding, HidingVerdict, UniverseCoverage,
};
use hiding_lcp_core::properties::invariance::InvarianceCheck;
use hiding_lcp_core::properties::soundness::{SoundnessCheck, SoundnessViolation};
use hiding_lcp_core::properties::strong::check_strong_exhaustive;
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::verify::{
    sum_stable_counters, AuditPlan, Block, Coverage, DynPropertyCheck, ExecMode, InstanceSet,
    ItemCtx, LabelSource, LazySweep, MetricsRecorder, PropertyCheck, PropertyTag, ShardSpec,
    SweepBudget, SweepOpts, SweepOutcome, SweepSession, SymmetrySpec, Universe, UniverseItem,
    ViewInterner,
};
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::algo::{bipartite, coloring};
use hiding_lcp_graph::canon::are_isomorphic;
use hiding_lcp_graph::graph::Graph;
use hiding_lcp_graph::{generators, IdAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every probe, by name. The order is the battery's replay order.
pub const ALL: &[(&str, fn())] = &[
    ("view_radius_structure", view_radius_structure),
    ("delta_oracle_parity_cycles", delta_oracle_parity_cycles),
    ("delta_mixed_blocks_resync", delta_mixed_blocks_resync),
    ("delta_budget_resume_parity", delta_budget_resume_parity),
    ("memo_digit_slots", memo_digit_slots),
    ("short_circuit_count", short_circuit_count),
    ("parallel_chunk_census", parallel_chunk_census),
    ("interner_identity", interner_identity),
    ("hiding_partial_inconclusive", hiding_partial_inconclusive),
    ("hiding_selfloop_walk", hiding_selfloop_walk),
    ("invariance_checks_node0", invariance_checks_node0),
    ("erasure_counts_rejections", erasure_counts_rejections),
    (
        "completeness_reports_max_bits",
        completeness_reports_max_bits,
    ),
    ("strong_keeps_all_acceptors", strong_keeps_all_acceptors),
    ("fault_salts_independent", fault_salts_independent),
    ("degradation_matches_oracle", degradation_matches_oracle),
    ("panel_channel_isolation", panel_channel_isolation),
    ("panel_member_frontiers", panel_member_frontiers),
    ("shard_merge_byte_identical", shard_merge_byte_identical),
    ("shard_counter_sums", shard_counter_sums),
    ("orbit_partition_weighted", orbit_partition_weighted),
    ("telemetry_quotient_partition", telemetry_quotient_partition),
    ("telemetry_span_balance", telemetry_span_balance),
    ("coloring_matches_bruteforce", coloring_matches_bruteforce),
    ("isomorphism_beyond_degrees", isomorphism_beyond_degrees),
    ("induced_subgraph_exact", induced_subgraph_exact),
];

/// The binary certificate alphabet used throughout.
pub fn bits() -> Vec<Certificate> {
    vec![Certificate::from_byte(0), Certificate::from_byte(1)]
}

/// Accepts iff the node's certificate differs from all neighbors' — the
/// workhorse local decoder of the whole workspace.
pub struct LocalDiff;

impl Decoder for LocalDiff {
    fn name(&self) -> String {
        "local-diff".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, view: &View) -> Verdict {
        let mine = view.center_label();
        Verdict::from(
            view.center_arcs()
                .iter()
                .all(|arc| view.node(arc.to).label != *mine),
        )
    }
}

/// [`LocalDiff`] that additionally rejects any empty certificate in
/// sight — the erasure-sensitive variant (an erased node and all its
/// neighbors notice the blank).
pub struct StrictDiff;

impl Decoder for StrictDiff {
    fn name(&self) -> String {
        "strict-diff".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, view: &View) -> Verdict {
        if view.center_label().is_empty() {
            return Verdict::Reject;
        }
        let mine = view.center_label();
        Verdict::from(view.center_arcs().iter().all(|arc| {
            let l = &view.node(arc.to).label;
            !l.is_empty() && l != mine
        }))
    }
}

/// Accepts everything.
pub struct YesMan;

impl Decoder for YesMan {
    fn name(&self) -> String {
        "yes-man".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, _view: &View) -> Verdict {
        Verdict::Accept
    }
}

/// Accepts iff two of the center's neighbors are adjacent to each other —
/// a label-independent decoder whose verdict is decided purely by the
/// skeleton *class*, which is exactly what a memo-key class collision
/// confuses.
pub struct TriangleSpotter;

impl Decoder for TriangleSpotter {
    fn name(&self) -> String {
        "triangle-spotter".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, view: &View) -> Verdict {
        let arcs = view.center_arcs();
        Verdict::from(arcs.iter().enumerate().any(|(i, a)| {
            arcs[i + 1..]
                .iter()
                .any(|b| view.has_arc(a.to, b.to) || view.has_arc(b.to, a.to))
        }))
    }
}

/// Accepts iff the center's identifier is odd (requires [`IdMode::Full`]).
pub struct OddId;

impl Decoder for OddId {
    fn name(&self) -> String {
        "odd-id".into()
    }
    fn radius(&self) -> usize {
        0
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Full
    }
    fn decide(&self, view: &View) -> Verdict {
        Verdict::from(view.center_id().expect("full mode") % 2 == 1)
    }
}

/// A check that records every item's full per-node acceptance vector —
/// the most discriminating observation the engine can make, so any
/// enumeration, memoization or scheduling bug shows up as a tally
/// mismatch.
pub struct VerdictTally<'a, D: ?Sized> {
    /// The decoder whose verdicts are tallied.
    pub decoder: &'a D,
}

impl<D: Decoder + ?Sized> PropertyCheck for VerdictTally<'_, D> {
    type Partial = Vec<bool>;
    type Verdict = Vec<(usize, Vec<bool>)>;

    fn view_configs(&self) -> Vec<(usize, IdMode)> {
        vec![(self.decoder.radius(), self.decoder.id_mode())]
    }

    fn inspect(&self, item: &UniverseItem<'_>, ctx: &ItemCtx<'_>) -> Option<Vec<bool>> {
        Some(
            ctx.run(item, self.decoder)
                .iter()
                .map(|v| v.is_accept())
                .collect(),
        )
    }

    fn verdict_decoder(&self) -> Option<&dyn Decoder> {
        Some(&self.decoder)
    }

    fn inspect_with_verdicts(
        &self,
        _item: &UniverseItem<'_>,
        verdicts: &[Verdict],
        _ctx: &ItemCtx<'_>,
    ) -> Option<Vec<bool>> {
        Some(verdicts.iter().map(|v| v.is_accept()).collect())
    }

    fn reduce(
        &self,
        _universe: &Universe,
        partials: Vec<(usize, Vec<bool>)>,
        _outcome: &SweepOutcome,
    ) -> Vec<(usize, Vec<bool>)> {
        partials
    }
}

/// The brute-force tally for a sequence of `(instance, labeling)` items
/// in universe order.
fn expected_tally<D: Decoder + ?Sized>(
    decoder: &D,
    items: &[(Instance, Labeling)],
) -> Vec<(usize, Vec<bool>)> {
    items
        .iter()
        .enumerate()
        .map(|(i, (instance, labeling))| {
            (
                i,
                oracle::run_by_definition(decoder, instance, labeling)
                    .iter()
                    .map(|v| v.is_accept())
                    .collect(),
            )
        })
        .collect()
}

/// All `(instance, labeling)` items of an exhaustive block, oracle-side.
fn exhaustive_items(instance: &Instance, alphabet: &[Certificate]) -> Vec<(Instance, Labeling)> {
    oracle::all_labelings(instance.graph().node_count(), alphabet)
        .into_iter()
        .map(|l| (instance.clone(), l))
        .collect()
}

/// Asserts the delta hot path, the decode oracle and the brute-force
/// reference all report the identical tally on `universe`.
fn assert_tally_parity<D: Decoder + ?Sized>(
    decoder: &D,
    universe: &Universe,
    expected: &[(usize, Vec<bool>)],
) {
    let tally = VerdictTally { decoder };
    let session = SweepSession::over(universe).mode(ExecMode::Sequential);
    let delta = session.opts(SweepOpts::default()).run(&tally);
    let decode = SweepSession::over(universe)
        .mode(ExecMode::Sequential)
        .opts(SweepOpts::oracle())
        .run(&tally);
    assert_eq!(
        delta.verdict, decode.verdict,
        "delta-stepping and decode-oracle strategies disagree"
    );
    assert_eq!(
        delta.verdict, expected,
        "engine tally diverges from the brute-force reference"
    );
    assert!(delta.errors.is_empty(), "sweep caught inspection panics");
}

/// A radius-r view is the *r*-ball: pins the view assembler's radius
/// arithmetic with exact node and arc counts on known graphs.
pub fn view_radius_structure() {
    let c5 = Instance::canonical(generators::cycle(5));
    let l5 = Labeling::empty(5);
    assert_eq!(c5.view(&l5, 0, 0, IdMode::Anonymous).node_count(), 1);
    assert_eq!(c5.view(&l5, 0, 1, IdMode::Anonymous).node_count(), 3);
    assert_eq!(c5.view(&l5, 0, 2, IdMode::Anonymous).node_count(), 5);

    let c6 = Instance::canonical(generators::cycle(6));
    let l6 = Labeling::empty(6);
    assert_eq!(c6.view(&l6, 0, 2, IdMode::Anonymous).node_count(), 5);

    let k4 = Instance::canonical(generators::complete(4));
    let view = k4.view(&Labeling::empty(4), 0, 1, IdMode::Anonymous);
    assert_eq!(view.node_count(), 4);
    assert_eq!(view.center_degree(), 3);
    // At radius 1 the edges among the center's neighbors are invisible.
    for arc in view.center_arcs() {
        assert_eq!(view.node(arc.to).arcs.len(), 1, "leaf sees only the center");
    }
}

/// Delta-stepping over single exhaustive blocks must match both the
/// decode oracle and the brute-force reference, for a label-sensitive
/// decoder and a random table decoder.
pub fn delta_oracle_parity_cycles() {
    for instance in [
        Instance::canonical(generators::cycle(5)),
        Instance::canonical(generators::path(4)),
    ] {
        let universe = Universe::all_labelings_of(instance.clone(), bits(), Coverage::Exhaustive)
            .expect("small universe fits");
        let expected = expected_tally(&LocalDiff, &exhaustive_items(&instance, &bits()));
        assert_tally_parity(&LocalDiff, &universe, &expected);
    }
    let c6 = Instance::canonical(generators::cycle(6));
    let universe = Universe::all_labelings_of(c6.clone(), bits(), Coverage::Exhaustive)
        .expect("64 labelings fit");
    let decoder = PortObliviousCycleDecoder::from_code(0x2d);
    let expected = expected_tally(&decoder, &exhaustive_items(&c6, &bits()));
    assert_tally_parity(&decoder, &universe, &expected);
}

/// A multi-block universe forces an odometer resync at every block
/// boundary, and pairing a triangle with a path puts two *different*
/// skeleton classes with equal ball sizes in one sweep — exactly what a
/// memo-key class collision or a dropped resync corrupts.
pub fn delta_mixed_blocks_resync() {
    let k3 = Instance::canonical(generators::cycle(3));
    let p4 = Instance::canonical(generators::path(4));
    let universe = Universe::new(
        vec![
            Block::new(k3.clone(), LabelSource::All { alphabet: bits() }),
            Block::new(p4.clone(), LabelSource::All { alphabet: bits() }),
            Block::new(
                p4.clone(),
                LabelSource::Fixed(vec![Labeling::uniform(4, Certificate::from_byte(1))]),
            ),
        ],
        Coverage::Sampled,
    )
    .expect("mixed universe fits");
    let mut items = exhaustive_items(&k3, &bits());
    items.extend(exhaustive_items(&p4, &bits()));
    items.push((p4.clone(), Labeling::uniform(4, Certificate::from_byte(1))));
    for run in [false, true] {
        if run {
            let expected = expected_tally(&TriangleSpotter, &items);
            assert_tally_parity(&TriangleSpotter, &universe, &expected);
        } else {
            let expected = expected_tally(&LocalDiff, &items);
            assert_tally_parity(&LocalDiff, &universe, &expected);
        }
    }
}

/// A budget-interrupted, resumed delta sweep must land on the identical
/// tally as the uninterrupted brute-force reference — every resume
/// re-enters the odometer mid-stream.
pub fn delta_budget_resume_parity() {
    let c6 = Instance::canonical(generators::cycle(6));
    let universe = Universe::all_labelings_of(c6.clone(), bits(), Coverage::Exhaustive)
        .expect("64 labelings fit");
    let tally = VerdictTally {
        decoder: &LocalDiff,
    };
    let budget = SweepBudget::unlimited().with_max_items(10);
    let session = SweepSession::over(&universe)
        .mode(ExecMode::Sequential)
        .budget(budget)
        .opts(SweepOpts::default());
    let mut state = session.run_budgeted(&tally);
    let mut slices = 1;
    while let Some(token) = state.resume.take() {
        state = session.resume(&tally, token);
        slices += 1;
        assert!(slices <= universe.len() + 2, "resume chain must terminate");
    }
    let expected = expected_tally(&LocalDiff, &exhaustive_items(&c6, &bits()));
    assert_eq!(state.report.verdict, expected);
    assert!(!state.report.interrupted);
}

/// A star's center ball has four nodes, so its digit keys use slots
/// beyond 2 — aliased slots collide distinct labelings onto one memo
/// entry and the tally drifts from the brute force.
pub fn memo_digit_slots() {
    let star = Instance::canonical(generators::star(3));
    let universe = Universe::all_labelings_of(star.clone(), bits(), Coverage::Exhaustive)
        .expect("16 labelings fit");
    let expected = expected_tally(&LocalDiff, &exhaustive_items(&star, &bits()));
    assert_tally_parity(&LocalDiff, &universe, &expected);
}

/// A short-circuited sweep reports `stop_at + 1` items checked: the
/// all-zero labeling violates soundness at index 0, so exactly one item
/// was examined.
pub fn short_circuit_count() {
    let c3 = Instance::canonical(generators::cycle(3));
    let universe =
        Universe::all_labelings_of(c3, bits(), Coverage::Exhaustive).expect("8 labelings fit");
    let report = SweepSession::over(&universe).run(&SoundnessCheck { decoder: &YesMan });
    assert!(report.short_circuited);
    assert_eq!(
        report.checked, 1,
        "violation at index 0 means 1 item checked"
    );
    let violation = report.verdict.expect_err("yes-man is unsound");
    assert_eq!(
        violation.labeling,
        Labeling::uniform(3, Certificate::from_byte(0)),
        "the witness is the lowest-indexed violating labeling"
    );
}

/// Parallel workers must partition the universe exactly: every item
/// tallied once, none twice, matching the sequential census on a
/// universe large enough to actually engage the thread pool.
pub fn parallel_chunk_census() {
    let c7 = Instance::canonical(generators::cycle(7));
    let universe = Universe::all_labelings_of(c7.clone(), bits(), Coverage::Exhaustive)
        .expect("128 labelings fit");
    let tally = VerdictTally {
        decoder: &LocalDiff,
    };
    let seq = SweepSession::over(&universe)
        .mode(ExecMode::Sequential)
        .run(&tally);
    let par = SweepSession::over(&universe)
        .mode(ExecMode::Parallel(crate::parity_threads().max(2)))
        .run(&tally);
    assert_eq!(par.verdict.len(), universe.len(), "each item tallied once");
    assert_eq!(seq.verdict, par.verdict);
    assert_eq!(seq.checked, par.checked);
}

/// The view interner's contract: distinct id ⟺ distinct view, with a
/// dense id → view table.
pub fn interner_identity() {
    let c5 = Instance::canonical(generators::cycle(5));
    let zeros = Labeling::uniform(5, Certificate::from_byte(0));
    let mut one_hot = zeros.clone();
    one_hot.set(1, Certificate::from_byte(1));
    let v0 = c5.view(&zeros, 0, 1, IdMode::Anonymous);
    let v1 = c5.view(&one_hot, 0, 1, IdMode::Anonymous);
    assert_ne!(v0, v1, "fixture views must differ");

    let interner = ViewInterner::new();
    let a = interner.intern(v0.clone());
    let b = interner.intern(v0.clone());
    assert_eq!(a, b, "re-interning an equal view returns the same id");
    assert_eq!(interner.len(), 1);
    let c = interner.intern(v1.clone());
    assert_ne!(a, c, "distinct views get distinct ids");
    assert_eq!(interner.len(), 2);
    let keyed = interner.intern_keyed(0xBEEF, v0.clone());
    assert_eq!(keyed, a, "the keyed path converges on the canonical id");
    assert_eq!(interner.lookup_key(0xBEEF), Some(a));
    assert_eq!(interner.len(), 2);
    let snapshot = interner.snapshot();
    assert_eq!(snapshot[a as usize], v0);
    assert_eq!(snapshot[c as usize], v1);
}

/// A colorable neighborhood graph from a *partial* universe proves
/// nothing: the verdict must stay `Inconclusive`.
pub fn hiding_partial_inconclusive() {
    let c4 = Instance::canonical(generators::cycle(4));
    let proper: Labeling = (0..4)
        .map(|v| Certificate::from_byte((v % 2) as u8))
        .collect();
    let universe =
        Universe::labelings_of(c4, vec![proper], Coverage::Sampled).expect("single labeling fits");
    let report = verify_hiding(&LocalDiff, &universe, 2, bipartite::is_bipartite);
    let (nbhd, verdict) = report.verdict;
    assert!(nbhd.view_count() > 0, "the sampled labeling is accepted");
    assert_eq!(
        verdict,
        HidingVerdict::Inconclusive,
        "a sampled universe cannot certify non-hiding"
    );
}

/// Equal adjacent accepting views are a self-loop — the length-1 odd walk
/// that makes an accept-everything decoder hiding even on partial
/// evidence.
pub fn hiding_selfloop_walk() {
    // Symmetric cycle ports collapse all of C4's views into one class, so
    // the accepting view is adjacent to an equal copy of itself.
    let g = generators::cycle(4);
    let ports = hiding_lcp_graph::ports::cycle_symmetric(&g);
    let instance = Instance::new(g, ports, IdAssignment::canonical(4)).expect("valid C4 instance");
    let li = instance.with_labeling(Labeling::empty(4));
    // Both Lemma 3.1 paths must find the loop: the incremental `extend`
    // step and the engine sweep behind `build`.
    let mut nbhd = NbhdGraph::empty(1, IdMode::Anonymous);
    nbhd.extend(&YesMan, vec![li.clone()], bipartite::is_bipartite);
    let swept = NbhdGraph::build(
        &YesMan,
        IdMode::Anonymous,
        vec![li],
        bipartite::is_bipartite,
    );
    assert_eq!(
        nbhd.self_loop_views(),
        swept.self_loop_views(),
        "extend and sweep disagree about self-loops"
    );
    assert_eq!(nbhd.view_count(), 1, "all C4 views are identical");
    assert_eq!(nbhd.self_loop_views(), vec![0]);
    let verdict = check_hiding(&nbhd, 2, UniverseCoverage::Partial);
    assert_eq!(verdict, HidingVerdict::Hiding { odd_walk: vec![0] });
}

/// Invariance inspection must include node 0: an identifier variant that
/// flips *only* node 0's verdict must be reported, and the engine must
/// agree with the oracle about it.
pub fn invariance_checks_node0() {
    let instance = Instance::canonical(generators::path(2));
    let labeling = Labeling::empty(2);
    // Canonical ids are (1, 2): node 0 accepts (odd), node 1 rejects.
    // The variant (2, 4) flips node 0 to reject and keeps node 1.
    let variant =
        IdAssignment::from_ids(vec![2, 4], instance.ids().bound()).expect("injective, in bound");
    let check = InvarianceCheck::new(&OddId, &instance, &labeling);
    let variant_li = LabeledInstance::new(
        instance.replace_ids(variant.clone()).expect("ids fit"),
        labeling.clone(),
    );
    let verdict = LazySweep::labeled(Coverage::Sampled)
        .run_labeled(&check, std::iter::once(variant_li))
        .verdict;
    let violation = verdict.expect_err("node 0's verdict changed");
    assert_eq!(violation.node, 0);
    let oracle_violation = oracle::invariance(&OddId, &instance, &labeling, &[variant])
        .expect_err("oracle sees the same flip");
    assert_eq!(oracle_violation.node, 0);
}

/// Erasure trials report *rejecting* node counts: zero faults mean zero
/// rejections, and erasing two certificates on a strict 6-cycle wakes at
/// least four verifiers. Explicit target sets must match the oracle
/// exactly.
pub fn erasure_counts_rejections() {
    let honest = Instance::canonical(generators::cycle(6)).with_labeling(
        (0..6)
            .map(|v| Certificate::from_byte((v % 2) as u8))
            .collect(),
    );
    let mut rng = StdRng::seed_from_u64(5);
    for outcome in random_erasure_trials(&StrictDiff, &honest, 0, 3, &mut rng) {
        assert_eq!(outcome.erased, 0);
        assert_eq!(outcome.rejecting, 0, "no erasure, no rejection");
    }
    let mut rng = StdRng::seed_from_u64(6);
    for outcome in random_erasure_trials(&StrictDiff, &honest, 2, 4, &mut rng) {
        assert_eq!(outcome.erased, 2);
        assert!(
            outcome.rejecting >= 4,
            "two erased nodes wake at least their closed neighborhoods, got {}",
            outcome.rejecting
        );
    }
    for targets in [vec![0], vec![0, 3], vec![1, 2, 4]] {
        assert_eq!(
            erase_and_run(&StrictDiff, &honest, &targets),
            oracle::erasure(&StrictDiff, &honest, &targets)
        );
    }
}

/// The completeness report aggregates the *maximum* certificate width
/// across passing instances, and must equal the oracle's report verbatim.
pub fn completeness_reports_max_bits() {
    /// Accepts every view without reading it.
    struct YesAll;
    impl Decoder for YesAll {
        fn name(&self) -> String {
            "yes-all".into()
        }
        fn radius(&self) -> usize {
            0
        }
        fn id_mode(&self) -> IdMode {
            IdMode::Anonymous
        }
        fn decide(&self, _view: &View) -> Verdict {
            Verdict::Accept
        }
    }
    /// Certifies with one n-byte certificate per node, so certificate
    /// width grows with the instance.
    struct WideProver;
    impl Prover for WideProver {
        fn name(&self) -> String {
            "wide".into()
        }
        fn certify(&self, instance: &Instance) -> Option<Labeling> {
            let n = instance.graph().node_count();
            Some(Labeling::uniform(n, Certificate::from_bytes(vec![0; n])))
        }
    }
    let instances = [
        Instance::canonical(generators::path(2)),
        Instance::canonical(generators::path(3)),
    ];
    let report = check_completeness(&YesAll, &WideProver, instances.clone());
    assert!(report.all_passed());
    assert_eq!(report.passed, 2);
    assert_eq!(
        report.max_certificate_bits, 24,
        "the 3-node instance's 3-byte certificates dominate"
    );
    assert_eq!(
        report,
        oracle::completeness(&YesAll, &WideProver, &instances)
    );
}

/// A strong-soundness witness carries the *entire* accepting set: on a
/// triangle under an accept-everything decoder that is all three nodes,
/// and the engine's first witness must equal the oracle's.
pub fn strong_keeps_all_acceptors() {
    let c3 = Instance::canonical(generators::cycle(3));
    let violation = check_strong_exhaustive(&YesMan, &KCol::new(2), &c3, &bits())
        .expect_err("a triangle of acceptors is not bipartite");
    assert_eq!(violation.accepting, vec![0, 1, 2]);
    let oracle_violation =
        oracle::strong(&YesMan, 2, &c3, &bits()).expect_err("oracle agrees it violates");
    assert_eq!(violation, oracle_violation);
}

/// Drop and duplication decisions must be independent coin flips: at
/// equal rates the two decision streams cannot coincide everywhere.
pub fn fault_salts_independent() {
    let mut rates = FaultRates::none();
    rates.drop = 0.5;
    rates.duplicate = 0.5;
    let plan = FaultPlan::new(0xDECAF, rates);
    let mut drops = Vec::new();
    let mut dups = Vec::new();
    for round in 0..5 {
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    drops.push(plan.drops(round, u, v));
                    dups.push(plan.duplicates(round, u, v));
                }
            }
        }
    }
    assert!(drops.iter().any(|&d| d), "a 50% drop rate fires sometimes");
    assert!(dups.iter().any(|&d| d), "a 50% dup rate fires sometimes");
    assert_ne!(
        drops, dups,
        "drop and duplication decisions share a salt — the streams are identical"
    );
}

/// The degradation harness is a pure function of its documented seed
/// derivation: the independent re-derivation must reproduce the report
/// byte for byte.
pub fn degradation_matches_oracle() {
    let honest = Instance::canonical(generators::cycle(6)).with_labeling(
        (0..6)
            .map(|v| Certificate::from_byte((v % 2) as u8))
            .collect(),
    );
    let adversarial = vec![Labeling::uniform(6, Certificate::from_byte(0))];
    let language = KCol::new(2);
    let rates = [0.1, 0.25, 0.5];
    let report = degradation_sweep(&LocalDiff, &language, &honest, &adversarial, &rates, 6, 11);
    let reference =
        oracle::degradation(&LocalDiff, &language, &honest, &adversarial, &rates, 6, 11);
    assert_eq!(report, reference);
    assert!(
        report.points[1].stats.total() > 0,
        "a 25% fault rate must fire some events"
    );
}

/// The two-channel fixture behind both panel probes: an all-accepting
/// and an all-rejecting cycle decoder disagree on every item of every
/// labeling of C4, so the soundness members built on them must reach
/// opposite verdicts — and both decoders are non-ZST, so their channel
/// keys are genuinely distinct addresses.
fn disagreeing_panel() -> (
    PortObliviousCycleDecoder,
    PortObliviousCycleDecoder,
    Universe,
) {
    let accept = PortObliviousCycleDecoder::from_code(0x3f);
    let reject = PortObliviousCycleDecoder::from_code(0);
    let universe = Universe::all_labelings_of(
        Instance::canonical(generators::cycle(4)),
        bits(),
        Coverage::Exhaustive,
    )
    .expect("16 labelings fit");
    (accept, reject, universe)
}

/// Each panel member must read its *own* decoder's verdict channel: on
/// the disagreeing two-channel panel, the member on the all-accepting
/// decoder finds a unanimously accepted labeling (soundness violated)
/// while the member on the all-rejecting decoder finds none. A
/// cross-channel read flips both verdicts.
pub fn panel_channel_isolation() {
    let (accept, reject, universe) = disagreeing_panel();
    let members = [
        DynPropertyCheck::new(
            PropertyTag::Soundness,
            "sound-accept",
            SoundnessCheck { decoder: &accept },
        )
        .with_channel(&accept),
        DynPropertyCheck::new(
            PropertyTag::Soundness,
            "sound-reject",
            SoundnessCheck { decoder: &reject },
        )
        .with_channel(&reject),
    ];
    for mode in [ExecMode::Sequential, ExecMode::Parallel(2)] {
        let panel = SweepSession::over(&universe).mode(mode).run_panel(&members);
        let v0 = panel.members[0]
            .verdict
            .get::<Result<usize, SoundnessViolation>>()
            .expect("soundness verdict");
        assert!(
            v0.is_err(),
            "all-accepting decoder must be caught unsound under {mode:?}"
        );
        let v1 = panel.members[1]
            .verdict
            .get::<Result<usize, SoundnessViolation>>()
            .expect("soundness verdict");
        assert!(
            v1.is_ok(),
            "all-rejecting decoder admits no unanimous accept under {mode:?}"
        );
    }
}

/// A short-circuited panel member records its frontier exactly: stopped
/// at item `s`, it reports `s + 1` items checked — the same count its
/// own single-check sweep reports — while the shared walk carries the
/// laggard member to the end of the universe.
pub fn panel_member_frontiers() {
    let (accept, reject, universe) = disagreeing_panel();
    let members = [
        DynPropertyCheck::new(
            PropertyTag::Soundness,
            "sound-accept",
            SoundnessCheck { decoder: &accept },
        )
        .with_channel(&accept),
        DynPropertyCheck::new(
            PropertyTag::Soundness,
            "sound-reject",
            SoundnessCheck { decoder: &reject },
        )
        .with_channel(&reject),
    ];
    let solo = SweepSession::over(&universe)
        .mode(ExecMode::Sequential)
        .run(&SoundnessCheck { decoder: &accept });
    assert_eq!(solo.checked, 1, "item 0 (all-zero) is unanimously accepted");
    for mode in [ExecMode::Sequential, ExecMode::Parallel(2)] {
        let panel = SweepSession::over(&universe).mode(mode).run_panel(&members);
        assert!(
            panel.members[0].short_circuited,
            "accepting member must stop at its witness under {mode:?}"
        );
        assert_eq!(
            panel.members[0].checked, solo.checked,
            "member frontier must match the single-check sweep under {mode:?}"
        );
        assert_eq!(
            panel.members[1].checked,
            universe.len(),
            "laggard member walks the whole universe under {mode:?}"
        );
        assert_eq!(panel.evidence.checked, universe.len());
    }
}

/// Sharded audits compose exactly: splitting the labelings walk into 2
/// or 3 contiguous ranges, running each range as its own shard report
/// and merging must reproduce the single-process audit's stable JSON
/// byte for byte. A shard partition that overlaps (or gaps) the index
/// space is rejected by the merge, so this probe dies on any drift in
/// the range arithmetic.
pub fn shard_merge_byte_identical() {
    let family = || InstanceSet::Explicit {
        instances: vec![
            Instance::canonical(generators::cycle(4)),
            Instance::canonical(generators::path(3)),
        ],
        coverage: Coverage::Sampled,
    };
    let plan = || AuditPlan::new(&LocalDiff, 2, family(), bits()).seed(11);
    let single = plan().run().to_stable_json();
    for shards in [2usize, 3] {
        let reports: Vec<String> = ShardSpec::partition(shards)
            .into_iter()
            .map(|s| plan().run_shard(s))
            .collect();
        let merged = plan()
            .run_with_shards(&reports)
            .expect("clean shard reports tile the universe");
        assert_eq!(single, merged.to_stable_json(), "{shards}-way split");
    }
}

/// The shard counter merge folds *every* shard's stable counters:
/// additive counters sum across shards, while `quotient_blocks` (a
/// universe-level census each shard recounts) takes the maximum, and the
/// result is name-sorted. Dropping any shard's contribution skews the
/// totals.
pub fn shard_counter_sums() {
    let per_shard = vec![
        vec![
            ("items_walked".to_string(), 40u64),
            ("quotient_blocks".to_string(), 2),
        ],
        vec![
            ("items_walked".to_string(), 24),
            ("quotient_blocks".to_string(), 3),
            ("verdict_refreshes".to_string(), 7),
        ],
        vec![
            ("items_walked".to_string(), 0),
            ("verdict_refreshes".to_string(), 5),
        ],
    ];
    let merged = sum_stable_counters(&per_shard);
    assert_eq!(
        merged,
        vec![
            ("items_walked".to_string(), 64),
            ("quotient_blocks".to_string(), 3),
            ("verdict_refreshes".to_string(), 12),
        ],
        "additive counters sum; quotient_blocks is a max; names sort"
    );
}

/// DSATUR's verdicts must equal brute-force colorability over every
/// connected graph on ≤ 5 nodes (plus the Petersen graph, which forces
/// The symmetry quotient partitions the labeling space. Over a
/// rotation-symmetric 5-cycle with binary certificates and a full label
/// swap class, the representatives a quotient sweep visits must carry
/// multiplicities summing to exactly 2^5, each be its orbit's flat-index
/// minimum, and tile the space with pairwise-disjoint orbits; and the
/// quotient must reproduce the full walk's soundness verdict and checked
/// count bit-for-bit.
fn orbit_partition_weighted() {
    struct Recorder;
    impl PropertyCheck for Recorder {
        type Partial = u64;
        type Verdict = Vec<(usize, u64)>;
        fn inspect(&self, _item: &UniverseItem<'_>, ctx: &ItemCtx<'_>) -> Option<u64> {
            Some(ctx.multiplicity())
        }
        fn symmetry_class(&self, _alphabet: &[Certificate]) -> Option<SymmetrySpec> {
            Some(SymmetrySpec {
                automorphisms: true,
                alphabet_classes: Some(vec![0, 0]),
            })
        }
        fn reduce(
            &self,
            _universe: &Universe,
            partials: Vec<(usize, u64)>,
            _outcome: &SweepOutcome,
        ) -> Self::Verdict {
            partials
        }
    }

    const N: usize = 5;
    let g = generators::cycle(N);
    let ports = hiding_lcp_graph::ports::cycle_symmetric(&g);
    let auts = hiding_lcp_graph::algo::automorphism::port_automorphisms(&g, &ports, 4096)
        .expect("cycle automorphism group is tiny");
    let instance = Instance::new(g, ports, IdAssignment::canonical(N)).expect("symmetric ports");
    let universe =
        Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive).expect("2^5 fits");

    let report = SweepSession::over(&universe)
        .mode(ExecMode::Sequential)
        .opts(SweepOpts::quotient())
        .run(&Recorder);
    assert_eq!(
        report.checked,
        universe.len(),
        "skipped orbit members still count as checked"
    );
    let reps = report.verdict;
    let total: u64 = reps.iter().map(|&(_, m)| m).sum();
    assert_eq!(total, 1 << N, "orbit multiplicities must sum to |Sigma|^n");

    // Recompute every orbit from the declared group (rotations x label
    // swap) and hold the sweep to it: canonical minimum, exact size,
    // disjoint coverage.
    let digits_of = |mut idx: usize| -> Vec<usize> {
        (0..N)
            .map(|_| {
                let d = idx % 2;
                idx /= 2;
                d
            })
            .collect()
    };
    let index_of = |d: &[usize]| -> usize { d.iter().rev().fold(0, |acc, &x| acc * 2 + x) };
    let mut covered = [false; 1 << N];
    for &(rep, mult) in &reps {
        let digits = digits_of(rep);
        let mut orbit = std::collections::BTreeSet::new();
        for pi in &auts {
            let mut pinv = [0usize; N];
            for (v, &w) in pi.iter().enumerate() {
                pinv[w] = v;
            }
            for swap in [false, true] {
                let image: Vec<usize> = (0..N)
                    .map(|v| {
                        let x = digits[pinv[v]];
                        if swap {
                            1 - x
                        } else {
                            x
                        }
                    })
                    .collect();
                orbit.insert(index_of(&image));
            }
        }
        assert_eq!(
            *orbit.iter().next().expect("orbit is nonempty"),
            rep,
            "representative must be its orbit's flat-index minimum"
        );
        assert_eq!(
            orbit.len() as u64,
            mult,
            "multiplicity must equal the orbit size"
        );
        for &member in &orbit {
            assert!(!covered[member], "orbits must be pairwise disjoint");
            covered[member] = true;
        }
    }
    assert!(covered.iter().all(|&c| c), "orbits must cover the space");

    // The quotient is invisible to a short-circuiting checker: same
    // verdict, same number of items charged.
    let check = SoundnessCheck {
        decoder: &LocalDiff,
    };
    let full = SweepSession::over(&universe)
        .mode(ExecMode::Sequential)
        .opts(SweepOpts::default())
        .run(&check);
    let quot = SweepSession::over(&universe)
        .mode(ExecMode::Sequential)
        .opts(SweepOpts::quotient())
        .run(&check);
    assert_eq!(
        full.verdict, quot.verdict,
        "quotient changed the soundness verdict"
    );
    assert_eq!(
        full.checked, quot.checked,
        "quotient changed the checked count"
    );
}

/// A quotient sweep's telemetry counters must tile the labeling space:
/// every walked item is either inspected or orbit-skipped, and the
/// recorded orbit multiplicities sum back to |Σ|^n. A recorder that
/// silently drops increments breaks the partition identity even though
/// the sweep's verdict is untouched.
fn telemetry_quotient_partition() {
    struct OrbitProbe;
    impl PropertyCheck for OrbitProbe {
        type Partial = u64;
        type Verdict = u64;
        fn inspect(&self, _item: &UniverseItem<'_>, ctx: &ItemCtx<'_>) -> Option<u64> {
            Some(ctx.multiplicity())
        }
        fn symmetry_class(&self, _alphabet: &[Certificate]) -> Option<SymmetrySpec> {
            Some(SymmetrySpec {
                automorphisms: true,
                alphabet_classes: Some(vec![0, 0]),
            })
        }
        fn reduce(
            &self,
            _universe: &Universe,
            partials: Vec<(usize, u64)>,
            _outcome: &SweepOutcome,
        ) -> Self::Verdict {
            partials.into_iter().map(|(_, m)| m).sum()
        }
    }

    const N: usize = 5;
    let g = generators::cycle(N);
    let ports = hiding_lcp_graph::ports::cycle_symmetric(&g);
    let instance = Instance::new(g, ports, IdAssignment::canonical(N)).expect("symmetric ports");
    let universe =
        Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive).expect("2^5 fits");

    let recorder = MetricsRecorder::new();
    let report = SweepSession::over(&universe)
        .mode(ExecMode::Sequential)
        .opts(SweepOpts::quotient())
        .metrics(&recorder)
        .run(&OrbitProbe);
    assert_eq!(report.verdict, 1 << N, "multiplicities must sum to 2^n");

    let snap = recorder.snapshot();
    let get = |name: &str| snap.get(name).unwrap_or(0);
    assert_eq!(
        get("items_walked"),
        (1u64) << N,
        "a complete quotient walk touches every flat index"
    );
    assert!(
        get("items_orbit_skipped") > 0,
        "a symmetric cycle must produce non-trivial orbits"
    );
    assert_eq!(
        get("items_inspected") + get("items_orbit_skipped"),
        get("items_walked"),
        "inspected + orbit-skipped must tile the walk"
    );
    assert_eq!(
        get("orbit_multiplicity"),
        (1u64) << N,
        "recorded multiplicities must sum to |Sigma|^n"
    );
}

/// Every span a recorded sweep enters must be exited: the trace of a
/// finished sequential sweep is balanced and non-empty. A recorder that
/// loses exits leaves spans open forever and the Chrome trace becomes
/// unreadable.
fn telemetry_span_balance() {
    let g = generators::cycle(5);
    let ports = hiding_lcp_graph::ports::cycle_symmetric(&g);
    let instance = Instance::new(g, ports, IdAssignment::canonical(5)).expect("symmetric ports");
    let universe =
        Universe::all_labelings_of(instance, bits(), Coverage::Exhaustive).expect("2^5 fits");

    let recorder = MetricsRecorder::new();
    let check = SoundnessCheck {
        decoder: &LocalDiff,
    };
    SweepSession::over(&universe)
        .mode(ExecMode::Sequential)
        .metrics(&recorder)
        .run(&check);
    assert!(
        recorder.trace_balanced(),
        "a finished sweep must close every span it opened"
    );
    let trace = recorder.trace_json();
    assert!(
        trace.contains("\"name\": \"sweep\""),
        "the sweep span must appear in the exported trace"
    );
}

/// backtracking at k = 3) for k ∈ {1, 2, 3}.
pub fn coloring_matches_bruteforce() {
    for g in generators::connected_graphs_up_to(5) {
        for k in 1..=3 {
            assert_eq!(
                coloring::is_k_colorable(&g, k),
                oracle::k_colorable(&g, k),
                "DSATUR disagrees with brute force on a {}-node graph at k={}",
                g.node_count(),
                k
            );
        }
    }
    let petersen = generators::petersen();
    assert!(!coloring::is_k_colorable(&petersen, 2));
    assert!(coloring::is_k_colorable(&petersen, 3));

    // A 9-node 3-chromatic graph on which the DSATUR search must
    // backtrack out of a failed color branch and succeed on the next one
    // — the restore path that small graphs never exercise.
    let backtracker = Graph::from_edges(
        9,
        &[
            (0, 2),
            (0, 3),
            (0, 6),
            (1, 3),
            (1, 4),
            (1, 7),
            (1, 8),
            (2, 6),
            (2, 8),
            (3, 4),
            (3, 8),
            (4, 6),
            (4, 7),
            (7, 8),
        ],
    )
    .expect("valid fixture");
    assert!(
        oracle::k_colorable(&backtracker, 3),
        "fixture is 3-colorable"
    );
    assert!(
        coloring::is_k_colorable(&backtracker, 3),
        "DSATUR must recover from its failed first branch"
    );
}

/// Isomorphism is more than a degree-sequence check: one 6-cycle and two
/// triangles are both 2-regular on 6 nodes yet not isomorphic.
pub fn isomorphism_beyond_degrees() {
    let c6 = generators::cycle(6);
    let two_triangles =
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).expect("valid");
    assert!(
        !are_isomorphic(&c6, &two_triangles),
        "equal degree sequences do not make graphs isomorphic"
    );
    let shuffled_c6 =
        Graph::from_edges(6, &[(0, 3), (3, 1), (1, 4), (4, 2), (2, 5), (5, 0)]).expect("valid");
    assert!(are_isomorphic(&c6, &shuffled_c6), "relabeled cycles match");
}

/// `Graph::induced` keeps every edge whose endpoints survive, matching
/// the hand-built reference.
pub fn induced_subgraph_exact() {
    let k4 = generators::complete(4);
    let keep = [0usize, 1, 2];
    let (sub, map) = k4.induced(&keep);
    assert_eq!(map, keep.to_vec());
    assert_eq!(sub.edge_count(), 3, "a triangle survives");
    let reference = oracle::induced(&k4, &keep);
    let mut got: Vec<(usize, usize)> = sub.edges().collect();
    let mut want: Vec<(usize, usize)> = reference.edges().collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);

    let c5 = generators::cycle(5);
    let (path, _) = c5.induced(&[0, 1, 2]);
    assert_eq!(path.edge_count(), 2);
}
