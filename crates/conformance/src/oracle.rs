//! Brute-force reference oracles for the seven LCP properties.
//!
//! Every function here is written straight off the paper's definitions
//! (PAPER.md, Sections 2–3) in the most naive way that terminates:
//! quantifiers become nested loops, "k-colorable" becomes enumeration of
//! all `k^n` color assignments, "induced subgraph" is rebuilt edge by
//! edge. None of it touches the production [`Universe`], sweep executor,
//! interner, memo, or the graph crate's DSATUR / canonical-form
//! algorithms — those are exactly the layers the differential suites
//! compare *against* these oracles, so sharing code with them would make
//! the comparison vacuous.
//!
//! The one production surface the oracles do share is the data model
//! itself ([`Instance`], [`Labeling`], [`View`] extraction via
//! [`Instance::view`], and the faulty network simulation): that layer
//! defines what a view *is*, so both sides must read it. Structural
//! properties of view extraction get their own direct probes in
//! [`crate::probes`] instead of differential ones.
//!
//! [`Universe`]: hiding_lcp_core::verify::Universe

use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::{Instance, LabeledInstance};
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::language::KCol;
use hiding_lcp_core::network::degradation::{DegradationPoint, DegradationReport};
use hiding_lcp_core::network::{run_distributed_faulty, FaultPlan, FaultRates, FaultStats};
use hiding_lcp_core::properties::completeness::{CompletenessFailure, CompletenessReport};
use hiding_lcp_core::properties::erasure::ErasureOutcome;
use hiding_lcp_core::properties::invariance::InvarianceViolation;
use hiding_lcp_core::properties::soundness::SoundnessViolation;
use hiding_lcp_core::properties::strong::StrongViolation;
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::graph::Graph;
use hiding_lcp_graph::IdAssignment;

/// Runs `decoder` on every node by the paper's definition: extract the
/// radius-r view in the decoder's id mode, decide, collect.
pub fn run_by_definition<D: Decoder + ?Sized>(
    decoder: &D,
    instance: &Instance,
    labeling: &Labeling,
) -> Vec<Verdict> {
    let (radius, id_mode) = (decoder.radius(), decoder.id_mode());
    instance
        .graph()
        .nodes()
        .map(|v| decoder.decide(&instance.view(labeling, v, radius, id_mode)))
        .collect()
}

/// All `|alphabet|^n` labelings in odometer order with node 0 as the least
/// significant digit — the same enumeration order the production
/// `Universe` documents, re-derived independently here.
///
/// # Panics
///
/// Panics if `alphabet` is empty while `n > 0`.
pub fn all_labelings(n: usize, alphabet: &[Certificate]) -> Vec<Labeling> {
    if n == 0 {
        return vec![Labeling::empty(0)];
    }
    assert!(!alphabet.is_empty(), "labelings need an alphabet");
    let mut out = Vec::new();
    let mut digits = vec![0usize; n];
    loop {
        out.push(digits.iter().map(|&d| alphabet[d].clone()).collect());
        let mut i = 0;
        while i < n {
            digits[i] += 1;
            if digits[i] < alphabet.len() {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
        if i == n {
            return out;
        }
    }
}

/// Whether `g` admits a proper `k`-coloring, by enumerating all `k^n`
/// assignments. Deliberately *not* the graph crate's DSATUR search.
pub fn k_colorable(g: &Graph, k: usize) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    if k == 0 {
        return false;
    }
    let mut colors = vec![0usize; n];
    loop {
        if g.edges().all(|(u, v)| colors[u] != colors[v]) {
            return true;
        }
        let mut i = 0;
        while i < n {
            colors[i] += 1;
            if colors[i] < k {
                break;
            }
            colors[i] = 0;
            i += 1;
        }
        if i == n {
            return false;
        }
    }
}

/// The subgraph of `g` induced by `keep` (which must be sorted, as the
/// production checkers pass accepting sets), rebuilt by hand: new node `i`
/// is old node `keep[i]`, and an edge survives iff both endpoints are
/// kept. Deliberately *not* [`Graph::induced`].
pub fn induced(g: &Graph, keep: &[usize]) -> Graph {
    let mut new_of_old = vec![usize::MAX; g.node_count()];
    for (new, &old) in keep.iter().enumerate() {
        new_of_old[old] = new;
    }
    let mut sub = Graph::new(keep.len());
    for (u, v) in g.edges() {
        let (nu, nv) = (new_of_old[u], new_of_old[v]);
        if nu != usize::MAX && nv != usize::MAX {
            sub.add_edge(nu, nv).expect("kept endpoints are in range");
        }
    }
    sub
}

/// Completeness by definition: for each instance in order, the prover must
/// certify and every node must accept. Mirrors the shape of the
/// production [`CompletenessReport`] exactly so differential tests can
/// `assert_eq!` whole reports.
pub fn completeness<D: Decoder + ?Sized, P: Prover + ?Sized>(
    decoder: &D,
    prover: &P,
    instances: &[Instance],
) -> CompletenessReport {
    let mut report = CompletenessReport {
        passed: 0,
        failures: Vec::new(),
        max_certificate_bits: 0,
    };
    for (idx, instance) in instances.iter().enumerate() {
        let Some(labeling) = prover.certify(instance) else {
            report
                .failures
                .push(CompletenessFailure::ProverDeclined { instance: idx });
            continue;
        };
        let bits = labeling.max_bits();
        let verdicts = run_by_definition(decoder, instance, &labeling);
        match verdicts.iter().position(|v| !v.is_accept()) {
            Some(node) => report.failures.push(CompletenessFailure::NodeRejected {
                instance: idx,
                node,
            }),
            None => {
                report.passed += 1;
                report.max_certificate_bits = report.max_certificate_bits.max(bits);
            }
        }
    }
    report
}

/// Soundness by definition: the first labeling (in odometer order) that
/// every node accepts, or `Ok(count)` after exhausting the alphabet.
pub fn soundness<D: Decoder + ?Sized>(
    decoder: &D,
    instance: &Instance,
    alphabet: &[Certificate],
) -> Result<usize, SoundnessViolation> {
    let n = instance.graph().node_count();
    let mut checked = 0;
    for labeling in all_labelings(n, alphabet) {
        checked += 1;
        if run_by_definition(decoder, instance, &labeling)
            .iter()
            .all(|v| v.is_accept())
        {
            return Err(SoundnessViolation { labeling });
        }
    }
    Ok(checked)
}

/// The number of unanimously accepted labelings — soundness without the
/// short-circuit, for metamorphic relations that compare whole counts
/// across transformed instances.
pub fn unanimous_count<D: Decoder + ?Sized>(
    decoder: &D,
    instance: &Instance,
    alphabet: &[Certificate],
) -> usize {
    all_labelings(instance.graph().node_count(), alphabet)
        .iter()
        .filter(|l| {
            run_by_definition(decoder, instance, l)
                .iter()
                .all(|v| v.is_accept())
        })
        .count()
}

/// Strong soundness by definition: for the first labeling whose accepting
/// set induces a graph with no proper `k`-coloring, the violation; else
/// `Ok(count)`. Colorability and the induced subgraph are both
/// brute-forced here, independent of the graph crate.
pub fn strong<D: Decoder + ?Sized>(
    decoder: &D,
    k: usize,
    instance: &Instance,
    alphabet: &[Certificate],
) -> Result<usize, StrongViolation> {
    let n = instance.graph().node_count();
    let mut checked = 0;
    for labeling in all_labelings(n, alphabet) {
        checked += 1;
        let accepting: Vec<usize> = run_by_definition(decoder, instance, &labeling)
            .iter()
            .enumerate()
            .filter_map(|(v, verdict)| verdict.is_accept().then_some(v))
            .collect();
        if !k_colorable(&induced(instance.graph(), &accepting), k) {
            return Err(StrongViolation {
                labeling,
                accepting,
            });
        }
    }
    Ok(checked)
}

/// The accepting neighborhood graph `V(D, ·)` by definition (paper,
/// Section 3): one vertex per distinct accepting view (in the extractor's
/// anonymous mode, first-seen order), one edge per pair of adjacent
/// accepting nodes of some labeled yes-instance. `self_loops[i]` marks
/// views adjacent to an equal copy of themselves.
pub struct ViewGraph {
    /// Distinct accepting views, in first-seen (instance, node) order.
    pub views: Vec<View>,
    /// Undirected edges between distinct view indices, deduplicated.
    pub edges: Vec<(usize, usize)>,
    /// `self_loops[i]` ⇔ view `i` is yes-instance-adjacent to itself.
    pub self_loops: Vec<bool>,
}

impl ViewGraph {
    /// Builds `V(D, ·)` over `items`, keeping only those whose graph
    /// passes `is_yes`.
    pub fn build<D: Decoder + ?Sized, F: Fn(&Graph) -> bool>(
        decoder: &D,
        items: &[LabeledInstance],
        is_yes: F,
    ) -> ViewGraph {
        let radius = decoder.radius();
        let mut views: Vec<View> = Vec::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut self_loops: Vec<bool> = Vec::new();
        for li in items.iter().filter(|li| is_yes(li.graph())) {
            let verdicts = run_by_definition(decoder, li.instance(), li.labeling());
            // Index of each accepting node's anonymous view, interning by
            // linear search (these graphs are tiny by construction).
            let idx_of: Vec<Option<usize>> = li
                .graph()
                .nodes()
                .map(|v| {
                    verdicts[v].is_accept().then(|| {
                        let view = li.view(v, radius, IdMode::Anonymous);
                        match views.iter().position(|w| *w == view) {
                            Some(i) => i,
                            None => {
                                views.push(view);
                                self_loops.push(false);
                                views.len() - 1
                            }
                        }
                    })
                })
                .collect();
            for (u, v) in li.graph().edges() {
                if let (Some(a), Some(b)) = (idx_of[u], idx_of[v]) {
                    if a == b {
                        self_loops[a] = true;
                    } else {
                        let e = (a.min(b), a.max(b));
                        if !edges.contains(&e) {
                            edges.push(e);
                        }
                    }
                }
            }
        }
        ViewGraph {
            views,
            edges,
            self_loops,
        }
    }

    /// Whether the view graph admits a proper `k`-coloring: no self-loops
    /// and a brute-forced proper coloring of the loop-free part.
    pub fn k_colorable(&self, k: usize) -> bool {
        if self.self_loops.iter().any(|&l| l) {
            return false;
        }
        let mut g = Graph::new(self.views.len());
        for &(a, b) in &self.edges {
            g.add_edge(a, b).expect("view indices in range");
        }
        k_colorable(&g, k)
    }

    /// The hiding predicate of Lemma 3.2: `D` is hiding iff `V(D, n)` is
    /// **not** `k`-colorable.
    pub fn hiding(&self, k: usize) -> bool {
        !self.k_colorable(k)
    }

    /// Connected components of the view graph (a self-loop keeps its view
    /// in its component), by plain BFS.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.views.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; self.views.len()];
        let mut comps = Vec::new();
        for start in 0..self.views.len() {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut frontier = vec![start];
            while let Some(v) = frontier.pop() {
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        comp.push(w);
                        frontier.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Per-view unextractability (the quantified-hiding measure): a view
    /// is unextractable iff its connected component — self-loops
    /// included — has no proper `k`-coloring.
    pub fn unextractable(&self, k: usize) -> Vec<bool> {
        let mut flags = vec![false; self.views.len()];
        for comp in self.components() {
            let poisoned = comp.iter().any(|&i| self.self_loops[i]);
            let sub = {
                let mut idx_of = vec![usize::MAX; self.views.len()];
                for (new, &old) in comp.iter().enumerate() {
                    idx_of[old] = new;
                }
                let mut g = Graph::new(comp.len());
                for &(a, b) in &self.edges {
                    if idx_of[a] != usize::MAX && idx_of[b] != usize::MAX {
                        g.add_edge(idx_of[a], idx_of[b]).expect("component edge");
                    }
                }
                g
            };
            if poisoned || !k_colorable(&sub, k) {
                for &i in &comp {
                    flags[i] = true;
                }
            }
        }
        flags
    }

    /// The hidden fraction of `li`'s nodes: those whose anonymous view is
    /// absent from the graph or sits in an unextractable component.
    pub fn hidden_fraction(&self, radius: usize, li: &LabeledInstance, k: usize) -> f64 {
        let n = li.graph().node_count();
        if n == 0 {
            return 0.0;
        }
        let unext = self.unextractable(k);
        let hidden = li
            .graph()
            .nodes()
            .filter(|&v| {
                let view = li.view(v, radius, IdMode::Anonymous);
                match self.views.iter().position(|w| *w == view) {
                    Some(i) => unext[i],
                    None => true,
                }
            })
            .count();
        hidden as f64 / n as f64
    }
}

/// Erasure reaction by definition: blank the targets' certificates and
/// count rejecting nodes with a fresh per-node decode.
pub fn erasure<D: Decoder + ?Sized>(
    decoder: &D,
    li: &LabeledInstance,
    targets: &[usize],
) -> ErasureOutcome {
    let mut labeling = li.labeling().clone();
    for &v in targets {
        labeling.set(v, Certificate::empty());
    }
    let rejecting = run_by_definition(decoder, li.instance(), &labeling)
        .iter()
        .filter(|v| !v.is_accept())
        .count();
    ErasureOutcome {
        erased: targets.len(),
        rejecting,
    }
}

/// Invariance by definition: for each identifier variant in order, the
/// first node whose verdict differs from the baseline assignment's.
pub fn invariance<D: Decoder + ?Sized>(
    decoder: &D,
    instance: &Instance,
    labeling: &Labeling,
    variants: &[IdAssignment],
) -> Result<(), InvarianceViolation> {
    let base = run_by_definition(decoder, instance, labeling);
    for ids in variants {
        let alt = instance
            .replace_ids(ids.clone())
            .expect("variant ids fit the graph");
        let verdicts = run_by_definition(decoder, &alt, labeling);
        if let Some(node) = (0..base.len()).find(|&v| base[v] != verdicts[v]) {
            return Err(InvarianceViolation {
                ids: ids.clone(),
                node,
            });
        }
    }
    Ok(())
}

/// SplitMix64, re-derived from its published constants so the degradation
/// oracle shares no code with the production fault layer.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The documented honest-trial plan-seed salt (`b'h'`).
pub const H_SALT: u64 = 0x68;
/// The documented adversarial-trial plan-seed salt (`b'a'`).
pub const A_SALT: u64 = 0x61;

/// The documented per-trial plan seed: a pure function of the sweep seed,
/// the rate's global index and the trial index.
pub fn trial_seed(seed: u64, rate_idx: usize, trial: usize, salt: u64) -> u64 {
    splitmix64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (rate_idx as u64) << 32
            ^ (trial as u64) << 8
            ^ salt,
    )
}

/// The degradation sweep by definition: same trials, same documented seed
/// derivation, but with the orchestration loop, salts, strong-soundness
/// judgment (hand-built induced subgraph + brute-force colorability) and
/// stat summation all reimplemented here. Shares only the faulty network
/// simulation itself with production.
pub fn degradation<D: Decoder + ?Sized>(
    decoder: &D,
    language: &KCol,
    honest: &LabeledInstance,
    adversarial: &[Labeling],
    rates: &[f64],
    trials: usize,
    seed: u64,
) -> DegradationReport {
    let n = honest.graph().node_count();
    let rejected: Vec<&Labeling> = adversarial
        .iter()
        .filter(|l| {
            let li = honest.instance().clone().with_labeling((*l).clone());
            !run_by_definition(decoder, li.instance(), li.labeling())
                .iter()
                .all(|v| v.is_accept())
        })
        .collect();
    let points = rates
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            let mut rejecting_total = 0usize;
            let mut strong_violations = 0usize;
            let mut false_accepts = 0usize;
            let mut adversarial_trials = 0usize;
            let mut stats = FaultStats::default();
            for t in 0..trials {
                let plan =
                    FaultPlan::new(trial_seed(seed, ri, t, H_SALT), FaultRates::uniform(rate));
                let (verdicts, s) = run_distributed_faulty(decoder, honest, &plan);
                stats = add_stats(stats, s);
                let accepting: Vec<usize> = verdicts
                    .iter()
                    .enumerate()
                    .filter_map(|(v, verdict)| verdict.is_accept().then_some(v))
                    .collect();
                rejecting_total += n - accepting.len();
                if !k_colorable(&induced(honest.graph(), &accepting), language.k()) {
                    strong_violations += 1;
                }
                if !rejected.is_empty() {
                    let labeling = rejected[t % rejected.len()];
                    let li = honest.instance().clone().with_labeling(labeling.clone());
                    let adv_plan =
                        FaultPlan::new(trial_seed(seed, ri, t, A_SALT), FaultRates::uniform(rate));
                    let (verdicts, s) = run_distributed_faulty(decoder, &li, &adv_plan);
                    stats = add_stats(stats, s);
                    adversarial_trials += 1;
                    if verdicts.iter().all(|v| v.is_accept()) {
                        false_accepts += 1;
                    }
                }
            }
            DegradationPoint {
                rate,
                trials,
                avg_rejecting: rejecting_total as f64 / trials.max(1) as f64,
                strong_violations,
                false_accepts,
                adversarial_trials,
                stats,
            }
        })
        .collect();
    DegradationReport {
        decoder: decoder.name(),
        nodes: n,
        seed,
        points,
    }
}

fn add_stats(a: FaultStats, b: FaultStats) -> FaultStats {
    FaultStats {
        dropped: a.dropped + b.dropped,
        duplicated: a.duplicated + b.duplicated,
        corrupted: a.corrupted + b.corrupted,
        delayed: a.delayed + b.delayed,
        expired: a.expired + b.expired,
        suppressed: a.suppressed + b.suppressed,
        decode_panics: a.decode_panics + b.decode_panics,
    }
}
