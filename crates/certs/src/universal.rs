//! The universal LCP (paper, Section 1.1): "every Turing-computable graph
//! property admits an LCP with certificates of size O(n²): simply provide
//! the entire adjacency matrix of the input graph to every vertex, along
//! with their corresponding node identifiers."
//!
//! Instantiated here for 2-colorability. Every node receives the claimed
//! graph (identifier list + adjacency bitmap) and checks that (a) the
//! claim is bipartite, (b) its own row matches its true neighborhood, and
//! (c) every neighbor carries the identical certificate. Soundness is the
//! classic argument: matching rows make the real graph an induced
//! subgraph of the (bipartite) claim; strong soundness follows because
//! adjacent accepting nodes share one claim per component.
//!
//! The universal LCP is the anti-hiding extreme: each node sees the whole
//! graph, so the lexicographically-first-coloring rule extracts a proper
//! 2-coloring at every node ([`UniversalExtractor`]), and `V(D, ·)` is
//! 2-colorable over any universe. The paper's hiding program asks how much
//! of this omniscience certification can *avoid*.

use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::{Instance, LabeledInstance};
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::algo::{bipartite, coloring};
use hiding_lcp_graph::Graph;

/// The decoded universal certificate: a claimed graph with identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphClaim {
    /// The claimed nodes' identifiers, in index order (strictly
    /// increasing, which also canonicalizes the encoding).
    pub ids: Vec<u64>,
    /// The claimed adjacency, row-major upper triangle.
    pub edges: Vec<(usize, usize)>,
}

impl GraphClaim {
    /// Builds the claim describing `instance`'s graph.
    pub fn of(instance: &Instance) -> GraphClaim {
        // Sort nodes by identifier for a canonical encoding.
        let g = instance.graph();
        let mut order: Vec<usize> = g.nodes().collect();
        order.sort_by_key(|&v| instance.ids().id(v));
        let mut pos = vec![0usize; g.node_count()];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        let ids = order.iter().map(|&v| instance.ids().id(v)).collect();
        let mut edges: Vec<(usize, usize)> = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (pos[u], pos[v]);
                (a.min(b), a.max(b))
            })
            .collect();
        edges.sort_unstable();
        GraphClaim { ids, edges }
    }

    /// The claimed graph.
    pub fn graph(&self) -> Graph {
        Graph::from_edges(self.ids.len(), &self.edges).expect("claims store valid edges")
    }

    /// The claimed index of identifier `id`.
    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The claimed neighbor identifiers of `id`, sorted.
    pub fn neighbors_of(&self, id: u64) -> Option<Vec<u64>> {
        let me = self.index_of(id)?;
        let mut out: Vec<u64> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == me {
                    Some(self.ids[b])
                } else if b == me {
                    Some(self.ids[a])
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        Some(out)
    }

    /// Encodes: `[n (2 bytes)] [ids: n × 8 bytes] [bitmap: ⌈n²/8⌉ bytes]`
    /// — the O(n²) certificate of Section 1.1.
    pub fn encode(&self) -> Certificate {
        let n = self.ids.len();
        let mut bytes = Vec::with_capacity(2 + 8 * n + (n * n).div_ceil(8));
        bytes.extend_from_slice(&(n as u16).to_be_bytes());
        for id in &self.ids {
            bytes.extend_from_slice(&id.to_be_bytes());
        }
        let mut bitmap = vec![0u8; (n * n).div_ceil(8)];
        for &(a, b) in &self.edges {
            for idx in [a * n + b, b * n + a] {
                bitmap[idx / 8] |= 1 << (idx % 8);
            }
        }
        bytes.extend_from_slice(&bitmap);
        Certificate::from_bytes(bytes)
    }

    /// Decodes; `None` if malformed (wrong length, unsorted or repeated
    /// identifiers, asymmetric bitmap, or diagonal entries).
    pub fn decode(cert: &Certificate) -> Option<GraphClaim> {
        let b = cert.bytes();
        let n = usize::from(u16::from_be_bytes([*b.first()?, *b.get(1)?]));
        let expected = 2 + 8 * n + (n * n).div_ceil(8);
        if b.len() != expected {
            return None;
        }
        let ids: Vec<u64> = (0..n)
            .map(|i| {
                let off = 2 + 8 * i;
                u64::from_be_bytes(b[off..off + 8].try_into().expect("8 bytes"))
            })
            .collect();
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        let bitmap = &b[2 + 8 * n..];
        let bit = |idx: usize| bitmap[idx / 8] >> (idx % 8) & 1 == 1;
        let mut edges = Vec::new();
        for a in 0..n {
            if bit(a * n + a) {
                return None; // loop
            }
            for c in (a + 1)..n {
                if bit(a * n + c) != bit(c * n + a) {
                    return None; // asymmetric
                }
                if bit(a * n + c) {
                    edges.push((a, c));
                }
            }
        }
        Some(GraphClaim { ids, edges })
    }
}

/// The universal one-round decoder for 2-colorability.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalDecoder;

impl Decoder for UniversalDecoder {
    fn name(&self) -> String {
        "universal adjacency-matrix (Section 1.1)".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Full
    }
    fn decide(&self, view: &View) -> Verdict {
        let Some(claim) = GraphClaim::decode(view.center_label()) else {
            return Verdict::Reject;
        };
        // (a) the claim is bipartite.
        if !bipartite::is_bipartite(&claim.graph()) {
            return Verdict::Reject;
        }
        // (b) my claimed row matches my true neighborhood.
        let my_id = view.center_id().expect("Full id mode");
        let Some(claimed) = claim.neighbors_of(my_id) else {
            return Verdict::Reject;
        };
        let mut actual: Vec<u64> = view
            .center_arcs()
            .iter()
            .map(|arc| view.node(arc.to).id.expect("Full id mode"))
            .collect();
        actual.sort_unstable();
        if claimed != actual {
            return Verdict::Reject;
        }
        // (c) every neighbor carries the identical certificate.
        Verdict::from(
            view.center_arcs()
                .iter()
                .all(|arc| view.node(arc.to).label == *view.center_label()),
        )
    }
}

/// The universal prover: hands every node the true graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalProver;

impl Prover for UniversalProver {
    fn name(&self) -> String {
        "universal adjacency-matrix (Section 1.1)".into()
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        if !bipartite::is_bipartite(instance.graph()) {
            return None;
        }
        let cert = GraphClaim::of(instance).encode();
        Some(Labeling::uniform(instance.graph().node_count(), cert))
    }
}

/// The anti-hiding witness: every node recomputes the lexicographically
/// first 2-coloring of the claimed graph and outputs its own color — a
/// one-round decoder that extracts a proper coloring from every accepted
/// universal certificate assignment. The universal LCP is therefore *not*
/// hiding, in the strongest possible way.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniversalExtractor;

impl UniversalExtractor {
    /// One node's extraction.
    pub fn extract(&self, view: &View) -> Option<usize> {
        let claim = GraphClaim::decode(view.center_label())?;
        let my_id = view.center_id()?;
        let me = claim.index_of(my_id)?;
        let colors = coloring::lex_first_coloring(&claim.graph(), 2)?;
        Some(colors[me])
    }

    /// Runs the extraction at every node; a `None` means that node failed.
    pub fn extract_all(&self, li: &LabeledInstance) -> Vec<Option<usize>> {
        li.graph()
            .nodes()
            .map(|v| self.extract(&li.view(v, 1, IdMode::Full)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiding_lcp_core::decoder::{accepts_all, run};
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::nbhd::NbhdGraph;
    use hiding_lcp_core::properties::{completeness, strong};
    use hiding_lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_on_bipartite_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        let instances = vec![
            Instance::canonical(generators::cycle(6)),
            Instance::canonical(generators::grid(3, 3)),
            Instance::random(generators::hypercube(3), &mut rng),
            Instance::canonical(generators::path(5)),
        ];
        let report =
            completeness::check_completeness(&UniversalDecoder, &UniversalProver, instances);
        assert!(report.all_passed(), "{:?}", report.failures);
        // O(n²) bits: for n = 9 (grid3x3): 2 + 72 + ceil(81/8) = 85 bytes.
        assert_eq!(report.max_certificate_bits, (2 + 72 + 11) * 8);
    }

    #[test]
    fn rejects_non_bipartite_claims_and_row_lies() {
        let inst = Instance::canonical(generators::cycle(5));
        assert!(UniversalProver.certify(&inst).is_none());
        // Hand the C5 its own (non-bipartite) claim: everyone rejects.
        let cert = GraphClaim::of(&inst).encode();
        let li = inst.clone().with_labeling(Labeling::uniform(5, cert));
        assert!(run(&UniversalDecoder, &li).iter().all(|v| !v.is_accept()));
        // Hand the C5 a bipartite FALSE claim (a C4): nodes whose rows
        // happen to match (ids 2 and 3 see {1,3} / {2,4} in both graphs)
        // may accept, but soundness only needs one rejection — and the
        // accepting set stays bipartite (strong soundness).
        let c4 = Instance::canonical(generators::cycle(4));
        let lie = GraphClaim::of(&c4).encode();
        let li = inst
            .clone()
            .with_labeling(Labeling::uniform(5, lie.clone()));
        let verdicts = run(&UniversalDecoder, &li);
        assert!(verdicts.iter().any(|v| !v.is_accept()), "someone rejects");
        let two_col = hiding_lcp_core::language::KCol::new(2);
        assert!(hiding_lcp_core::properties::strong::strong_holds_for(
            &UniversalDecoder,
            &two_col,
            &inst,
            &Labeling::uniform(5, lie)
        )
        .is_ok());
    }

    #[test]
    fn strong_soundness_under_mixed_claims() {
        // Different components may carry different claims; adjacent
        // accepting nodes must share one, so the accepting set stays
        // bipartite. Random mixtures of honest claims on a no-instance.
        let two_col = KCol::new(2);
        let mut rng = StdRng::seed_from_u64(7);
        let donor_a = GraphClaim::of(&Instance::canonical(generators::cycle(4))).encode();
        let donor_b = GraphClaim::of(&Instance::canonical(generators::path(5))).encode();
        for g in [
            generators::cycle(5),
            generators::complete(4),
            generators::petersen(),
        ] {
            let inst = Instance::canonical(g);
            let honest_self = GraphClaim::of(&inst).encode();
            let alphabet = vec![
                donor_a.clone(),
                donor_b.clone(),
                honest_self,
                Certificate::from_byte(3),
            ];
            assert!(strong::check_strong_random(
                &UniversalDecoder,
                &two_col,
                &inst,
                &alphabet,
                1_500,
                &mut rng
            )
            .is_ok());
        }
    }

    #[test]
    fn extractor_defeats_the_universal_lcp() {
        // On every accepted instance, the extractor outputs a proper
        // 2-coloring at EVERY node: maximal leakage.
        let two_col = KCol::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        for g in [
            generators::cycle(8),
            generators::grid(2, 4),
            generators::balanced_tree(2, 3),
        ] {
            let inst = Instance::random(g, &mut rng);
            let labeling = UniversalProver.certify(&inst).unwrap();
            let li = inst.with_labeling(labeling);
            assert!(accepts_all(&UniversalDecoder, &li));
            let outputs = UniversalExtractor.extract_all(&li);
            assert!(two_col.is_extracted_witness(li.graph(), &outputs));
        }
    }

    #[test]
    fn neighborhood_graph_is_two_colorable() {
        // Lemma 3.2 confirmation: V(D, ·) over honest universal instances
        // is 2-colorable, so no hiding.
        let universe: Vec<LabeledInstance> = [
            generators::cycle(4),
            generators::cycle(6),
            generators::path(5),
            generators::star(3),
        ]
        .into_iter()
        .map(|g| {
            let inst = Instance::canonical(g);
            let labeling = UniversalProver.certify(&inst).unwrap();
            inst.with_labeling(labeling)
        })
        .collect();
        let nbhd = NbhdGraph::build(&UniversalDecoder, IdMode::Full, universe, |g| {
            bipartite::is_bipartite(g)
        });
        assert!(nbhd.view_count() > 0);
        assert!(nbhd.k_colorable(2), "universal certification cannot hide");
        assert_eq!(nbhd.chromatic_number(), Some(2));
    }

    #[test]
    fn codec_roundtrip() {
        let inst = Instance::canonical(generators::theta(2, 2, 3));
        let claim = GraphClaim::of(&inst);
        assert_eq!(GraphClaim::decode(&claim.encode()), Some(claim.clone()));
        assert_eq!(claim.graph().edge_count(), inst.graph().edge_count());
        assert_eq!(GraphClaim::decode(&Certificate::from_byte(0)), None);
        assert_eq!(GraphClaim::decode(&Certificate::empty()), None);
        // Unsorted identifiers are malformed.
        let mut bad = claim.clone();
        bad.ids.reverse();
        assert_eq!(GraphClaim::decode(&bad.encode()), None);
    }
}
