//! The Theorem 1.4 LCP: strong and hiding certification of 2-colorability
//! on watermelon graphs with `O(log n)`-bit certificates.
//!
//! Every node learns the identifiers of the two endpoints; path nodes
//! additionally carry their path's number and, per incident edge, the
//! far-end port and an edge color. The decoder checks a proper
//! 2-edge-coloring along each path and monochromatic edge bundles at the
//! endpoints, which pins all path lengths to one parity — exactly
//! bipartiteness of a watermelon — without assigning any node a color.
//!
//! One transcription note: the paper's rule 3(c) indexes the neighbor's
//! certificate by the *claimed* far port `p_i^u`. We additionally check
//! that the claim matches the true port `prt(w_i, e)` visible in the view;
//! without this binding, three identical certificates on a triangle
//! cross-reference each other's other edges and rule 3(c) is fooled (our
//! strong-soundness sweep found this concretely). The check is available
//! to the one-round verifier and evidently intended.

use crate::shatter::id_width;
use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::{Instance, LabeledInstance};
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::classes::watermelon as wm;
use hiding_lcp_graph::IdAssignment;

/// A decoded Theorem 1.4 certificate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MelonLabel {
    /// Type 1: an endpoint; carries both endpoint identifiers in
    /// increasing order.
    Endpoint {
        /// The smaller endpoint identifier.
        id1: u64,
        /// The larger endpoint identifier.
        id2: u64,
    },
    /// Type 2: an internal path node.
    PathNode {
        /// The smaller endpoint identifier.
        id1: u64,
        /// The larger endpoint identifier.
        id2: u64,
        /// The path's unique number.
        path: u16,
        /// Per-port data: `(far_port, color)` for the edges at ports 1
        /// and 2.
        edges: [(u8, u8); 2],
    },
}

impl MelonLabel {
    /// Decodes a certificate whose identifiers are `width` bytes wide;
    /// `None` if malformed (including `id1 ≥ id2` or equal edge colors on
    /// a path node).
    pub fn decode(cert: &Certificate, width: usize) -> Option<MelonLabel> {
        let b = cert.bytes();
        let tag = *b.first()?;
        let id = |off: usize| -> Option<u64> {
            let slice = b.get(off..off + width)?;
            let mut out = 0u64;
            for &byte in slice {
                out = out << 8 | u64::from(byte);
            }
            Some(out)
        };
        match tag {
            1 => {
                if b.len() != 1 + 2 * width {
                    return None;
                }
                let (id1, id2) = (id(1)?, id(1 + width)?);
                (id1 < id2).then_some(MelonLabel::Endpoint { id1, id2 })
            }
            2 => {
                if b.len() != 7 + 2 * width {
                    return None;
                }
                let (id1, id2) = (id(1)?, id(1 + width)?);
                let o = 1 + 2 * width;
                let path = u16::from_be_bytes([b[o], b[o + 1]]);
                let edges = [(b[o + 2], b[o + 3]), (b[o + 4], b[o + 5])];
                // The far end of an edge may be an endpoint of degree k,
                // so far ports range over 1..=255 while colors are bits.
                let ports_ok = edges.iter().all(|&(p, c)| p >= 1 && c <= 1);
                (id1 < id2 && ports_ok && edges[0].1 != edges[1].1).then_some(
                    MelonLabel::PathNode {
                        id1,
                        id2,
                        path,
                        edges,
                    },
                )
            }
            _ => None,
        }
    }

    /// Encodes to a certificate with `width`-byte identifiers.
    ///
    /// # Panics
    ///
    /// Panics if an identifier does not fit in `width` bytes.
    pub fn encode(&self, width: usize) -> Certificate {
        let cap = 1u64.checked_shl(8 * width as u32).unwrap_or(u64::MAX);
        let (a, b) = self.endpoint_ids();
        assert!(width >= 8 || (a < cap && b < cap), "identifier too wide");
        let push_id = |bytes: &mut Vec<u8>, id: u64| {
            bytes.extend_from_slice(&id.to_be_bytes()[8 - width..]);
        };
        let mut bytes = Vec::new();
        match self {
            MelonLabel::Endpoint { id1, id2 } => {
                bytes.push(1);
                push_id(&mut bytes, *id1);
                push_id(&mut bytes, *id2);
            }
            MelonLabel::PathNode {
                id1,
                id2,
                path,
                edges,
            } => {
                bytes.push(2);
                push_id(&mut bytes, *id1);
                push_id(&mut bytes, *id2);
                bytes.extend_from_slice(&path.to_be_bytes());
                for &(p, c) in edges {
                    bytes.push(p);
                    bytes.push(c);
                }
            }
        }
        Certificate::from_bytes(bytes)
    }

    fn endpoint_ids(&self) -> (u64, u64) {
        match self {
            MelonLabel::Endpoint { id1, id2 } => (*id1, *id2),
            MelonLabel::PathNode { id1, id2, .. } => (*id1, *id2),
        }
    }
}

/// The one-round decoder of Theorem 1.4 (identifier-reading).
///
/// # Example
///
/// ```
/// use hiding_lcp_certs::watermelon::{WatermelonDecoder, WatermelonProver};
/// use hiding_lcp_core::decoder::accepts_all;
/// use hiding_lcp_core::instance::Instance;
/// use hiding_lcp_core::prover::Prover;
/// use hiding_lcp_graph::generators;
///
/// // Three slices of even length: bipartite, hence certifiable.
/// let instance = Instance::canonical(generators::watermelon(&[2, 4, 6]));
/// let labeling = WatermelonProver.certify(&instance).expect("uniform parity");
/// assert!(accepts_all(&WatermelonDecoder, &instance.with_labeling(labeling)));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct WatermelonDecoder;

impl Decoder for WatermelonDecoder {
    fn name(&self) -> String {
        "watermelon (Theorem 1.4)".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Full
    }
    fn decide(&self, view: &View) -> Verdict {
        let width = id_width(view.id_bound());
        let Some(mine) = MelonLabel::decode(view.center_label(), width) else {
            return Verdict::Reject;
        };
        let my_id = view.center_id().expect("Full id mode");
        let neighbors: Option<Vec<MelonLabel>> = view
            .center_arcs()
            .iter()
            .map(|arc| MelonLabel::decode(&view.node(arc.to).label, width))
            .collect();
        let Some(neighbors) = neighbors else {
            return Verdict::Reject;
        };
        // Condition 1: everyone in sight agrees on the endpoints.
        if neighbors
            .iter()
            .any(|w| w.endpoint_ids() != mine.endpoint_ids())
        {
            return Verdict::Reject;
        }
        let accept = match &mine {
            MelonLabel::Endpoint { id1, id2 } => {
                // 2(a): I am one of the endpoints.
                if my_id != *id1 && my_id != *id2 {
                    return Verdict::Reject;
                }
                let mut paths = Vec::new();
                let mut colors = Vec::new();
                for (arc, w) in view.center_arcs().iter().zip(&neighbors) {
                    // 2(b): neighbors are path nodes whose entry behind
                    // the shared edge points back at my port.
                    let MelonLabel::PathNode { path, edges, .. } = w else {
                        return Verdict::Reject;
                    };
                    let j = usize::from(arc.port_there) - 1;
                    if j >= 2 {
                        return Verdict::Reject;
                    }
                    let (far_port, color) = edges[j];
                    if u16::from(far_port) != arc.port_here {
                        return Verdict::Reject;
                    }
                    paths.push(*path);
                    colors.push(color);
                }
                // 2(c): distinct path numbers; 2(d): monochromatic bundle.
                let mut sorted = paths.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len() == paths.len() && colors.windows(2).all(|w| w[0] == w[1])
            }
            MelonLabel::PathNode {
                id1,
                id2,
                path,
                edges,
            } => {
                // 3(a): exactly two neighbors, via ports 1 and 2.
                if view.center_degree() != 2 {
                    return Verdict::Reject;
                }
                for (arc, w) in view.center_arcs().iter().zip(&neighbors) {
                    let i = usize::from(arc.port_here) - 1;
                    let (far_port, color) = edges[i];
                    // The recorded far port must be the edge's true port
                    // at the neighbor (visible in the view). Without this
                    // binding, a triangle of identical certificates can
                    // cross-reference each other's *other* edges and fool
                    // rule 3(c) — see the strong-soundness tests.
                    if u16::from(far_port) != arc.port_there {
                        return Verdict::Reject;
                    }
                    match w {
                        // 3(b): path ends at one of the endpoints.
                        MelonLabel::Endpoint { .. } => {
                            let wid = view.node(arc.to).id.expect("Full id mode");
                            if wid != *id1 && wid != *id2 {
                                return Verdict::Reject;
                            }
                        }
                        // 3(c): interior consistency along the path.
                        MelonLabel::PathNode {
                            path: wpath,
                            edges: wedges,
                            ..
                        } => {
                            if wpath != path {
                                return Verdict::Reject;
                            }
                            let j = usize::from(far_port) - 1;
                            let Some(&(wp, wc)) = wedges.get(j) else {
                                return Verdict::Reject;
                            };
                            if u16::from(wp) != arc.port_here || wc != color {
                                return Verdict::Reject;
                            }
                        }
                    }
                }
                true
            }
        };
        Verdict::from(accept)
    }
}

/// The Theorem 1.4 prover.
#[derive(Debug, Clone, Copy, Default)]
pub struct WatermelonProver;

impl Prover for WatermelonProver {
    fn name(&self) -> String {
        "watermelon (Theorem 1.4)".into()
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        certify_with_polarity(instance, 0)
    }
}

/// The completeness construction with a chosen color for the edges at
/// `v₁` (both polarities are accepting on bipartite watermelons).
pub fn certify_with_polarity(instance: &Instance, polarity: u8) -> Option<Labeling> {
    let g = instance.graph();
    let melon = wm::decompose(g)?;
    if !melon.is_bipartite() {
        return None;
    }
    let (v1, v2) = melon.endpoints;
    let width = id_width(instance.ids().bound());
    let (id1, id2) = {
        let a = instance.ids().id(v1);
        let b = instance.ids().id(v2);
        (a.min(b), a.max(b))
    };
    let mut labels = Labeling::empty(g.node_count());
    let endpoint = MelonLabel::Endpoint { id1, id2 }.encode(width);
    labels.set(v1, endpoint.clone());
    labels.set(v2, endpoint);
    // Color each path's edges alternately starting with `polarity` at v1.
    let mut edge_color: std::collections::HashMap<(usize, usize), u8> =
        std::collections::HashMap::new();
    for path in &melon.paths {
        let mut color = polarity & 1;
        for pair in path.windows(2) {
            edge_color.insert((pair[0], pair[1]), color);
            edge_color.insert((pair[1], pair[0]), color);
            color ^= 1;
        }
    }
    for (pi, path) in melon.paths.iter().enumerate() {
        for &u in &path[1..path.len() - 1] {
            let entry = |port: u16| {
                let w = instance.ports().neighbor_at(u, port);
                (instance.ports().port_to(w, u) as u8, edge_color[&(u, w)])
            };
            labels.set(
                u,
                MelonLabel::PathNode {
                    id1,
                    id2,
                    path: u16::try_from(pi).ok()?,
                    edges: [entry(1), entry(2)],
                }
                .encode(width),
            );
        }
    }
    Some(labels)
}

/// The hiding-witness universe from Theorem 1.4's proof: the path `P₈`
/// (a one-slice watermelon) under the identity identifier assignment and
/// the middle-block swap `id₂(u_i) = 9 − i` for `i ∈ {3..6}`, across every
/// port assignment and both edge-coloring polarities. The swap makes two
/// nodes share views across the instances while sitting at distances of
/// different parity — an odd closed walk in `V(D, 8)`.
pub fn hiding_witness_universe() -> Vec<LabeledInstance> {
    let g = hiding_lcp_graph::generators::path(8);
    let id_sets: [Vec<u64>; 2] = [(1..=8).collect(), vec![1, 2, 6, 5, 4, 3, 7, 8]];
    let mut out = Vec::new();
    for ports in hiding_lcp_graph::ports::all_port_assignments(&g, 1_000) {
        for ids in &id_sets {
            let inst = Instance::new(
                g.clone(),
                ports.clone(),
                IdAssignment::from_ids(ids.clone(), 64).expect("injective"),
            )
            .expect("valid instance");
            for polarity in [0, 1] {
                if let Some(labeling) = certify_with_polarity(&inst, polarity) {
                    out.push(inst.clone().with_labeling(labeling));
                }
            }
        }
    }
    out
}

/// Structured adversarial labelings for the soundness experiments:
/// parity-mixed path colorings and forged endpoint claims.
pub fn adversary_labelings(instance: &Instance) -> Vec<Labeling> {
    let g = instance.graph();
    let n = g.node_count();
    let ports = instance.ports();
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    let width = id_width(instance.ids().bound());
    let id1 = instance.ids().id(0).min(instance.ids().id(1));
    let id2 = instance.ids().id(0).max(instance.ids().id(1));
    // Everyone claims endpoint.
    out.push(Labeling::uniform(
        n,
        MelonLabel::Endpoint { id1, id2 }.encode(width),
    ));
    // Degree-2 nodes carry arbitrary-polarity path labels; others claim
    // endpoint — a parity-scrambling adversary.
    for polarity in 0..=1u8 {
        let mut labels = Labeling::empty(n);
        for v in g.nodes() {
            if g.degree(v) == 2 {
                let entry = |port: u16| {
                    let w = ports.neighbor_at(v, port);
                    (ports.port_to(w, v) as u8, (polarity + port as u8) % 2)
                };
                labels.set(
                    v,
                    MelonLabel::PathNode {
                        id1,
                        id2,
                        path: 0,
                        edges: [entry(1), entry(2)],
                    }
                    .encode(width),
                );
            } else {
                labels.set(v, MelonLabel::Endpoint { id1, id2 }.encode(width));
            }
        }
        out.push(labels);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiding_lcp_core::decoder::accepts_all;
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::nbhd::NbhdGraph;
    use hiding_lcp_core::properties::{completeness, strong};
    use hiding_lcp_graph::algo::bipartite;
    use hiding_lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_on_bipartite_watermelons() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut instances = vec![
            Instance::canonical(generators::watermelon(&[2, 2])),
            Instance::canonical(generators::watermelon(&[2, 4, 6])),
            Instance::canonical(generators::watermelon(&[3, 3, 5])),
            Instance::canonical(generators::watermelon(&[5; 6])),
            Instance::canonical(generators::path(8)),
            Instance::canonical(generators::cycle(10)),
        ];
        instances.push(Instance::random(generators::watermelon(&[2, 4]), &mut rng));
        let report =
            completeness::check_completeness(&WatermelonDecoder, &WatermelonProver, instances);
        assert!(report.all_passed(), "{:?}", report.failures);
        // O(log n): identifiers take 2 bytes at these bounds (n^2 <= 2^16),
        // so path-node certificates occupy 7 + 2*2 bytes.
        assert_eq!(report.max_certificate_bits, (7 + 4) * 8);
    }

    #[test]
    fn both_polarities_are_accepted() {
        let inst = Instance::canonical(generators::watermelon(&[2, 4]));
        for polarity in [0, 1] {
            let labeling = certify_with_polarity(&inst, polarity).unwrap();
            assert!(accepts_all(
                &WatermelonDecoder,
                &inst.clone().with_labeling(labeling)
            ));
        }
    }

    #[test]
    fn declines_outside_the_promise() {
        assert!(
            WatermelonProver
                .certify(&Instance::canonical(generators::watermelon(&[2, 3])))
                .is_none(),
            "mixed parity is not bipartite"
        );
        assert!(WatermelonProver
            .certify(&Instance::canonical(generators::star(3)))
            .is_none());
        assert!(WatermelonProver
            .certify(&Instance::canonical(generators::grid(3, 3)))
            .is_none());
    }

    #[test]
    fn strong_soundness_structured_and_random() {
        let two_col = KCol::new(2);
        let mut rng = StdRng::seed_from_u64(47);
        for g in [
            generators::cycle(5),
            generators::watermelon(&[2, 3]),
            generators::watermelon(&[3, 3, 4]),
            generators::complete(4),
            generators::cycle(3),
        ] {
            let inst = Instance::canonical(g);
            for labeling in adversary_labelings(&inst) {
                assert!(
                    strong::strong_holds_for(&WatermelonDecoder, &two_col, &inst, &labeling)
                        .is_ok()
                );
            }
            let alphabet: Vec<Certificate> = adversary_labelings(&inst)
                .iter()
                .flat_map(|l| l.as_slice().to_vec())
                .collect();
            assert!(strong::check_strong_random(
                &WatermelonDecoder,
                &two_col,
                &inst,
                &alphabet,
                800,
                &mut rng
            )
            .is_ok());
        }
    }

    #[test]
    fn hiding_via_the_id_swap_universe() {
        let universe = hiding_witness_universe();
        assert!(!universe.is_empty());
        for li in &universe {
            assert!(accepts_all(&WatermelonDecoder, li));
        }
        let nbhd = NbhdGraph::build(&WatermelonDecoder, IdMode::Full, universe, |g| {
            bipartite::is_bipartite(g)
        });
        let odd = nbhd.odd_cycle().expect("Theorem 1.4's decoder hides");
        assert_eq!(odd.len() % 2, 1);
    }

    #[test]
    fn rejects_parity_breaking_forgeries() {
        // A watermelon with paths of lengths 2 and 3 (an odd C5): try the
        // honest labeling of each path independently — the endpoint bundle
        // check must catch the parity clash.
        let inst = Instance::canonical(generators::watermelon(&[2, 3]));
        let g = inst.graph().clone();
        let melon = wm::decompose(&g).unwrap();
        assert!(!melon.is_bipartite());
        // Hand-build: alternate colors along both paths from v1.
        let mut labels = adversary_labelings(&inst).remove(1);
        let (v1, v2) = melon.endpoints;
        let width = id_width(inst.ids().bound());
        let id1 = inst.ids().id(v1).min(inst.ids().id(v2));
        let id2 = inst.ids().id(v1).max(inst.ids().id(v2));
        labels.set(v1, MelonLabel::Endpoint { id1, id2 }.encode(width));
        labels.set(v2, MelonLabel::Endpoint { id1, id2 }.encode(width));
        let verdicts =
            hiding_lcp_core::decoder::run(&WatermelonDecoder, &inst.with_labeling(labels));
        assert!(verdicts.iter().any(|v| !v.is_accept()));
    }

    #[test]
    fn codec_roundtrip() {
        for width in [1usize, 2, 8] {
            for label in [
                MelonLabel::Endpoint { id1: 3, id2: 9 },
                MelonLabel::PathNode {
                    id1: 1,
                    id2: 8,
                    path: 300,
                    edges: [(1, 0), (2, 1)],
                },
            ] {
                assert_eq!(MelonLabel::decode(&label.encode(width), width), Some(label));
            }
        }
        // id1 >= id2 is malformed.
        let bad = MelonLabel::Endpoint { id1: 9, id2: 3 }.encode(1);
        assert_eq!(MelonLabel::decode(&bad, 1), None);
        // Equal edge colors malformed.
        let bad = MelonLabel::PathNode {
            id1: 1,
            id2: 2,
            path: 0,
            edges: [(1, 1), (2, 1)],
        }
        .encode(1);
        assert_eq!(MelonLabel::decode(&bad, 1), None);
        assert_eq!(MelonLabel::decode(&Certificate::empty(), 1), None);
    }
}
