//! The Lemma 4.2 LCP: strong and hiding certification of 2-colorability on
//! even cycles by revealing a proper 2-*edge*-coloring.
//!
//! Each node's certificate describes its two incident edges: for the edge
//! behind port `i ∈ {1, 2}` it records the pair of ports
//! `(prt(v, e), prt(w, e))` identifying the edge at both endpoints, plus
//! the edge's color. A node accepts iff its certificate matches the ports
//! it actually sees, its two edge colors differ, and both neighbors'
//! certificates agree on the shared edges. An even cycle is 2-colorable
//! iff it is 2-edge-colorable, but the edge coloring reveals the node
//! coloring *nowhere* — the paper's strongest hiding phenomenon.

use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::classes::simple::is_even_cycle;

/// One edge entry of a Lemma 4.2 certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeEntry {
    /// `prt(v, e)` — the port at the certificate's owner.
    pub port_self: u8,
    /// `prt(w, e)` — the port at the other endpoint.
    pub port_other: u8,
    /// The edge color.
    pub color: u8,
}

/// A decoded Lemma 4.2 certificate: one entry per port, in port order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CycleLabel {
    /// Entries for ports 1 and 2.
    pub entries: [EdgeEntry; 2],
}

impl CycleLabel {
    /// Decodes a certificate; `None` if not a *valid labeling* in the
    /// lemma's sense (wrong length, ports outside `{1, 2}`, colors outside
    /// `{0, 1}`, or entries not describing ports 1 and 2 in order).
    pub fn decode(cert: &Certificate) -> Option<CycleLabel> {
        let b = cert.bytes();
        if b.len() != 6 {
            return None;
        }
        let entry = |chunk: &[u8]| -> Option<EdgeEntry> {
            let (ps, po, c) = (chunk[0], chunk[1], chunk[2]);
            ((1..=2).contains(&ps) && (1..=2).contains(&po) && c <= 1).then_some(EdgeEntry {
                port_self: ps,
                port_other: po,
                color: c,
            })
        };
        let e1 = entry(&b[0..3])?;
        let e2 = entry(&b[3..6])?;
        (e1.port_self == 1 && e2.port_self == 2).then_some(CycleLabel { entries: [e1, e2] })
    }

    /// Encodes to a 6-byte certificate.
    pub fn encode(&self) -> Certificate {
        let mut bytes = Vec::with_capacity(6);
        for e in &self.entries {
            bytes.extend_from_slice(&[e.port_self, e.port_other, e.color]);
        }
        Certificate::from_bytes(bytes)
    }

    /// The entry for the given 1-based port.
    pub fn entry(&self, port: u8) -> Option<EdgeEntry> {
        self.entries.iter().copied().find(|e| e.port_self == port)
    }
}

/// The one-round anonymous decoder of Lemma 4.2.
///
/// # Example
///
/// ```
/// use hiding_lcp_certs::even_cycle::{EvenCycleDecoder, EvenCycleProver};
/// use hiding_lcp_core::decoder::accepts_all;
/// use hiding_lcp_core::instance::Instance;
/// use hiding_lcp_core::prover::Prover;
/// use hiding_lcp_graph::generators;
///
/// let instance = Instance::canonical(generators::cycle(8));
/// let labeling = EvenCycleProver.certify(&instance).expect("even cycle");
/// assert!(accepts_all(&EvenCycleDecoder, &instance.with_labeling(labeling)));
/// // Odd cycles are declined by the prover outright.
/// assert!(EvenCycleProver.certify(&Instance::canonical(generators::cycle(7))).is_none());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct EvenCycleDecoder;

impl Decoder for EvenCycleDecoder {
    fn name(&self) -> String {
        "even-cycle edge-coloring (Lemma 4.2)".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, view: &View) -> Verdict {
        // Only degree-2 nodes can carry a valid cycle certificate.
        if view.center_degree() != 2 {
            return Verdict::Reject;
        }
        let Some(mine) = CycleLabel::decode(view.center_label()) else {
            return Verdict::Reject;
        };
        if mine.entries[0].color == mine.entries[1].color {
            return Verdict::Reject;
        }
        for arc in view.center_arcs() {
            let Some(my_entry) = mine.entry(arc.port_here as u8) else {
                return Verdict::Reject;
            };
            // The certificate must name the true port pair of the edge.
            if u16::from(my_entry.port_other) != arc.port_there {
                return Verdict::Reject;
            }
            // The neighbor's entry for this edge must point back with the
            // same color.
            let Some(nbr) = CycleLabel::decode(&view.node(arc.to).label) else {
                return Verdict::Reject;
            };
            let Some(nbr_entry) = nbr.entry(arc.port_there as u8) else {
                return Verdict::Reject;
            };
            if u16::from(nbr_entry.port_other) != arc.port_here || nbr_entry.color != my_entry.color
            {
                return Verdict::Reject;
            }
        }
        Verdict::Accept
    }
}

/// The Lemma 4.2 prover: walks the (even) cycle alternating edge colors.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvenCycleProver;

impl Prover for EvenCycleProver {
    fn name(&self) -> String {
        "even-cycle edge-coloring (Lemma 4.2)".into()
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        certify_with_polarity(instance, 0)
    }
}

/// The prover with a chosen color for the cycle edge leaving node 0 —
/// both polarities are accepting, and mixing them in a neighborhood-graph
/// universe exhibits the Figs. 5/6 hiding witness.
pub fn certify_with_polarity(instance: &Instance, first_color: u8) -> Option<Labeling> {
    let g = instance.graph();
    if !is_even_cycle(g) {
        return None;
    }
    // Trace the cycle from node 0 and color edges alternately.
    let mut edge_color: std::collections::HashMap<(usize, usize), u8> =
        std::collections::HashMap::new();
    let mut prev = 0usize;
    let mut cur = g.neighbors(0)[0];
    let mut color = first_color & 1;
    edge_color.insert((0, cur), color);
    edge_color.insert((cur, 0), color);
    while cur != 0 {
        let next = *g
            .neighbors(cur)
            .iter()
            .find(|&&w| w != prev)
            .expect("cycle nodes have two neighbors");
        color ^= 1;
        edge_color.insert((cur, next), color);
        edge_color.insert((next, cur), color);
        prev = cur;
        cur = next;
    }
    let labels = g
        .nodes()
        .map(|v| {
            let entries: Vec<EdgeEntry> = (1..=2u16)
                .map(|p| {
                    let w = instance.ports().neighbor_at(v, p);
                    EdgeEntry {
                        port_self: p as u8,
                        port_other: instance.ports().port_to(w, v) as u8,
                        color: edge_color[&(v, w)],
                    }
                })
                .collect();
            CycleLabel {
                entries: [entries[0], entries[1]],
            }
            .encode()
        })
        .collect();
    Some(labels)
}

/// The adversarial alphabet: every well-formed label (ports in `{1, 2}`,
/// colors in `{0, 1}`) plus one malformed certificate — 17 letters.
pub fn adversary_alphabet() -> Vec<Certificate> {
    let mut out = Vec::new();
    for po1 in 1..=2u8 {
        for c1 in 0..=1u8 {
            for po2 in 1..=2u8 {
                for c2 in 0..=1u8 {
                    out.push(
                        CycleLabel {
                            entries: [
                                EdgeEntry {
                                    port_self: 1,
                                    port_other: po1,
                                    color: c1,
                                },
                                EdgeEntry {
                                    port_self: 2,
                                    port_other: po2,
                                    color: c2,
                                },
                            ],
                        }
                        .encode(),
                    );
                }
            }
        }
    }
    out.push(Certificate::from_byte(9));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiding_lcp_core::decoder::accepts_all;
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::nbhd::NbhdGraph;
    use hiding_lcp_core::properties::{completeness, strong};
    use hiding_lcp_graph::algo::bipartite;
    use hiding_lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_on_even_cycles_under_any_ports() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut instances = Vec::new();
        for n in [4usize, 6, 8, 12, 30] {
            instances.push(Instance::canonical(generators::cycle(n)));
            instances.push(Instance::random(generators::cycle(n), &mut rng));
        }
        let report =
            completeness::check_completeness(&EvenCycleDecoder, &EvenCycleProver, instances);
        assert!(report.all_passed(), "{:?}", report.failures);
        assert_eq!(
            report.max_certificate_bits, 48,
            "constant-size certificates"
        );
    }

    #[test]
    fn both_polarities_are_accepted() {
        let inst = Instance::canonical(generators::cycle(6));
        for polarity in [0, 1] {
            let labeling = certify_with_polarity(&inst, polarity).unwrap();
            assert!(accepts_all(
                &EvenCycleDecoder,
                &inst.clone().with_labeling(labeling)
            ));
        }
    }

    #[test]
    fn declines_outside_the_promise() {
        assert!(EvenCycleProver
            .certify(&Instance::canonical(generators::cycle(5)))
            .is_none());
        assert!(EvenCycleProver
            .certify(&Instance::canonical(generators::path(6)))
            .is_none());
        assert!(EvenCycleProver
            .certify(&Instance::canonical(generators::theta(2, 2, 2)))
            .is_none());
    }

    #[test]
    fn strong_soundness_exhaustive_on_triangles() {
        let two_col = KCol::new(2);
        let alphabet = adversary_alphabet();
        let c3 = Instance::canonical(generators::cycle(3));
        let checked = strong::check_strong_exhaustive(&EvenCycleDecoder, &two_col, &c3, &alphabet)
            .expect("strongly sound on C3");
        assert_eq!(checked, 17usize.pow(3));
    }

    #[test]
    fn strong_soundness_random_on_larger_no_instances() {
        let two_col = KCol::new(2);
        let alphabet = adversary_alphabet();
        let mut rng = StdRng::seed_from_u64(23);
        for g in [
            generators::cycle(5),
            generators::cycle(7),
            generators::complete(4),
            generators::petersen(),
            generators::watermelon(&[2, 3]),
        ] {
            let inst = Instance::canonical(g);
            assert!(strong::check_strong_random(
                &EvenCycleDecoder,
                &two_col,
                &inst,
                &alphabet,
                2_000,
                &mut rng
            )
            .is_ok());
        }
    }

    #[test]
    fn hiding_via_port_symmetric_self_loop() {
        // Universe: C4 under every port assignment, both edge-coloring
        // polarities. Some port assignment makes two adjacent nodes'
        // anonymous views identical — a self-loop in V(D, ·), the
        // strongest possible hiding witness (the 2-edge-coloring reveals
        // the 2-coloring *nowhere*).
        let g = generators::cycle(4);
        let mut universe = Vec::new();
        for ports in hiding_lcp_graph::ports::all_port_assignments(&g, 100) {
            let inst = Instance::new(
                g.clone(),
                ports,
                hiding_lcp_graph::IdAssignment::canonical(4),
            )
            .unwrap();
            for polarity in [0, 1] {
                if let Some(labeling) = certify_with_polarity(&inst, polarity) {
                    universe.push(inst.clone().with_labeling(labeling));
                }
            }
        }
        let nbhd = NbhdGraph::build(&EvenCycleDecoder, IdMode::Anonymous, universe, |g| {
            bipartite::is_bipartite(g) && is_even_cycle(g)
        });
        let odd = nbhd.odd_cycle().expect("Lemma 4.2's decoder must hide");
        assert_eq!(odd.len() % 2, 1);
        assert!(
            !nbhd.self_loop_views().is_empty(),
            "the hiding witness is a self-loop: identical adjacent views"
        );
    }

    #[test]
    fn rejects_color_clash_and_port_lies() {
        let inst = Instance::canonical(generators::cycle(4));
        let honest = certify_with_polarity(&inst, 0).unwrap();
        // Same color on both entries at node 0.
        let mut clash = honest.clone();
        let mut lbl = CycleLabel::decode(clash.label(0)).unwrap();
        lbl.entries[1].color = lbl.entries[0].color;
        clash.set(0, lbl.encode());
        let verdicts =
            hiding_lcp_core::decoder::run(&EvenCycleDecoder, &inst.clone().with_labeling(clash));
        assert!(!verdicts[0].is_accept());
        // Lying about the neighbor's port.
        let mut lie = honest.clone();
        let mut lbl = CycleLabel::decode(lie.label(0)).unwrap();
        lbl.entries[0].port_other ^= 3; // 1 <-> 2
        lie.set(0, lbl.encode());
        let verdicts = hiding_lcp_core::decoder::run(&EvenCycleDecoder, &inst.with_labeling(lie));
        assert!(!verdicts[0].is_accept());
    }

    #[test]
    fn codec_roundtrip_and_validation() {
        let lbl = CycleLabel {
            entries: [
                EdgeEntry {
                    port_self: 1,
                    port_other: 2,
                    color: 0,
                },
                EdgeEntry {
                    port_self: 2,
                    port_other: 1,
                    color: 1,
                },
            ],
        };
        assert_eq!(CycleLabel::decode(&lbl.encode()), Some(lbl));
        assert_eq!(CycleLabel::decode(&Certificate::from_byte(0)), None);
        // Entries out of order.
        let bytes = vec![2, 1, 0, 1, 1, 1];
        assert_eq!(CycleLabel::decode(&Certificate::from_bytes(bytes)), None);
        // Port 3 invalid.
        let bytes = vec![1, 3, 0, 2, 1, 1];
        assert_eq!(CycleLabel::decode(&Certificate::from_bytes(bytes)), None);
    }
}
