//! The Lemma 4.1 LCP: strong and hiding certification of 2-colorability
//! on graphs with minimum degree one, hiding the coloring at a pendant
//! node.
//!
//! Certificates come from the four-letter alphabet `{0, 1, ⊥, ⊤}`: the
//! prover reveals a proper 2-coloring everywhere except at one degree-one
//! node of its choosing, which gets `⊥` while its unique neighbor gets
//! `⊤`. Strong soundness holds because an accepting `⊥` has degree one and
//! an accepting `⊤` funnels every odd cycle through its `⊥` neighbor —
//! neither can sit on a cycle.

use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::algo::bipartite;

/// The four-letter label alphabet of Lemma 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Letter {
    /// Color 0.
    Zero,
    /// Color 1.
    One,
    /// `⊥`: "I am the hidden pendant node".
    Bot,
    /// `⊤`: "my neighbor is the hidden pendant node".
    Top,
}

impl Letter {
    /// Decodes a certificate, `None` if malformed.
    pub fn decode(cert: &Certificate) -> Option<Letter> {
        match cert.bytes() {
            [0] => Some(Letter::Zero),
            [1] => Some(Letter::One),
            [2] => Some(Letter::Bot),
            [3] => Some(Letter::Top),
            _ => None,
        }
    }

    /// Encodes to a one-byte certificate.
    pub fn encode(self) -> Certificate {
        Certificate::from_byte(match self {
            Letter::Zero => 0,
            Letter::One => 1,
            Letter::Bot => 2,
            Letter::Top => 3,
        })
    }

    /// The color bit, if this letter is a color.
    pub fn color(self) -> Option<u8> {
        match self {
            Letter::Zero => Some(0),
            Letter::One => Some(1),
            Letter::Bot | Letter::Top => None,
        }
    }
}

/// The one-round anonymous decoder of Lemma 4.1.
///
/// # Example
///
/// ```
/// use hiding_lcp_certs::degree_one::{DegreeOneDecoder, DegreeOneProver};
/// use hiding_lcp_core::decoder::accepts_all;
/// use hiding_lcp_core::instance::Instance;
/// use hiding_lcp_core::prover::Prover;
/// use hiding_lcp_graph::generators;
///
/// let instance = Instance::canonical(generators::star(4));
/// let labeling = DegreeOneProver.certify(&instance).expect("stars are in H1");
/// assert!(accepts_all(&DegreeOneDecoder, &instance.with_labeling(labeling)));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeOneDecoder;

impl Decoder for DegreeOneDecoder {
    fn name(&self) -> String {
        "degree-one (Lemma 4.1)".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, view: &View) -> Verdict {
        let Some(mine) = Letter::decode(view.center_label()) else {
            return Verdict::Reject;
        };
        let neighbors: Option<Vec<Letter>> = view
            .center_arcs()
            .iter()
            .map(|arc| Letter::decode(&view.node(arc.to).label))
            .collect();
        let Some(neighbors) = neighbors else {
            return Verdict::Reject;
        };
        let accept = match mine {
            // Rule 1: ⊥ needs degree one and a ⊤ neighbor.
            Letter::Bot => neighbors.len() == 1 && neighbors[0] == Letter::Top,
            // Rule 2: ⊤ needs exactly one ⊥ neighbor; all the others must
            // share one color β.
            Letter::Top => {
                let bots = neighbors.iter().filter(|&&l| l == Letter::Bot).count();
                let colors: Option<Vec<u8>> = neighbors
                    .iter()
                    .filter(|&&l| l != Letter::Bot)
                    .map(|l| l.color())
                    .collect();
                bots == 1 && colors.is_some_and(|cs| cs.windows(2).all(|w| w[0] == w[1]))
            }
            // Rule 3: a colored node allows at most one ⊤ neighbor; every
            // other neighbor carries the opposite color.
            Letter::Zero | Letter::One => {
                let my_color = mine.color().expect("colored letter");
                let tops = neighbors.iter().filter(|&&l| l == Letter::Top).count();
                tops <= 1
                    && neighbors
                        .iter()
                        .filter(|&&l| l != Letter::Top)
                        .all(|l| l.color().is_some_and(|c| c != my_color))
            }
        };
        Verdict::from(accept)
    }
}

/// The Lemma 4.1 prover: a proper 2-coloring everywhere, with `⊥`/`⊤`
/// planted at the smallest degree-one node and its neighbor.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeOneProver;

impl Prover for DegreeOneProver {
    fn name(&self) -> String {
        "degree-one (Lemma 4.1)".into()
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        certify_hiding_at(instance, None)
    }
}

/// Like [`DegreeOneProver`], but hides at a chosen degree-one node
/// (`None` = the smallest). Returns `None` if the graph is not bipartite,
/// has no degree-one node, or the chosen node has a different degree.
pub fn certify_hiding_at(instance: &Instance, pendant: Option<usize>) -> Option<Labeling> {
    let g = instance.graph();
    let sides = bipartite::bipartition(g).ok()?;
    let pendant = match pendant {
        Some(v) => (v < g.node_count() && g.degree(v) == 1).then_some(v)?,
        None => g.nodes().find(|&v| g.degree(v) == 1)?,
    };
    let anchor = g.neighbors(pendant)[0];
    let labels = g
        .nodes()
        .map(|v| {
            if v == pendant {
                Letter::Bot
            } else if v == anchor {
                Letter::Top
            } else if sides[v] == 0 {
                Letter::Zero
            } else {
                Letter::One
            }
            .encode()
        })
        .collect();
    Some(labels)
}

/// Every accepting labeling family the completeness proof admits: for each
/// bipartition polarity, the plain revealing labeling (no `⊥`/`⊤` — rule 3
/// tolerates zero `⊤` neighbors) and one hidden labeling per degree-one
/// node. Used to seed hiding universes (the Figs. 3/4 odd cycle mixes
/// hidden and revealing instances of both polarities).
pub fn accepting_labelings(instance: &Instance) -> Vec<Labeling> {
    let g = instance.graph();
    let Ok(sides) = bipartite::bipartition(g) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for polarity in [0u8, 1u8] {
        let color = |v: usize| {
            if sides[v] == polarity {
                Letter::One
            } else {
                Letter::Zero
            }
        };
        out.push(g.nodes().map(|v| color(v).encode()).collect());
        for pendant in g.nodes().filter(|&v| g.degree(v) == 1) {
            let anchor = g.neighbors(pendant)[0];
            out.push(
                g.nodes()
                    .map(|v| {
                        if v == pendant {
                            Letter::Bot
                        } else if v == anchor {
                            Letter::Top
                        } else {
                            color(v)
                        }
                        .encode()
                    })
                    .collect(),
            );
        }
    }
    out
}

/// The full adversarial alphabet: the four letters plus a malformed byte.
pub fn adversary_alphabet() -> Vec<Certificate> {
    vec![
        Letter::Zero.encode(),
        Letter::One.encode(),
        Letter::Bot.encode(),
        Letter::Top.encode(),
        Certificate::from_byte(9),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiding_lcp_core::decoder::accepts_all;
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::nbhd::{sources, NbhdGraph};
    use hiding_lcp_core::properties::{completeness, strong};
    use hiding_lcp_graph::generators;

    fn h1_instances() -> Vec<Instance> {
        vec![
            Instance::canonical(generators::path(4)),
            Instance::canonical(generators::path(7)),
            Instance::canonical(generators::star(4)),
            Instance::canonical(generators::caterpillar(4, 2)),
            Instance::canonical(generators::pendant_path(6, 2)),
            Instance::canonical(generators::balanced_tree(2, 3)),
            Instance::canonical(generators::with_pendant(&generators::grid(3, 3), 4).0),
        ]
    }

    #[test]
    fn complete_on_min_degree_one_bipartite_graphs() {
        let report =
            completeness::check_completeness(&DegreeOneDecoder, &DegreeOneProver, h1_instances());
        assert!(report.all_passed(), "{:?}", report.failures);
        assert_eq!(report.max_certificate_bits, 8, "constant-size certificates");
    }

    #[test]
    fn every_pendant_choice_is_accepted() {
        let inst = Instance::canonical(generators::caterpillar(3, 2));
        let g = inst.graph().clone();
        for v in g.nodes().filter(|&v| g.degree(v) == 1) {
            let labeling = certify_hiding_at(&inst, Some(v)).expect("pendant exists");
            assert!(accepts_all(
                &DegreeOneDecoder,
                &inst.clone().with_labeling(labeling)
            ));
        }
        assert!(
            certify_hiding_at(&inst, Some(0)).is_none(),
            "spine node is not a pendant"
        );
    }

    #[test]
    fn declines_outside_the_promise() {
        assert!(DegreeOneProver
            .certify(&Instance::canonical(generators::cycle(6)))
            .is_none());
        assert!(
            DegreeOneProver
                .certify(&Instance::canonical(generators::pendant_path(5, 2)))
                .is_none(),
            "odd cycle with a tail is not bipartite"
        );
    }

    #[test]
    fn strong_soundness_exhaustive_on_small_graphs() {
        // Strong soundness quantifies over arbitrary graphs: odd cycles,
        // odd cycles with tails, cliques, and even yes-instances.
        let two_col = KCol::new(2);
        let alphabet = adversary_alphabet();
        for g in [
            generators::cycle(3),
            generators::pendant_path(3, 1),
            generators::complete(4),
            generators::path(4),
            generators::star(3),
        ] {
            let inst = Instance::canonical(g);
            assert!(
                strong::check_strong_exhaustive(&DegreeOneDecoder, &two_col, &inst, &alphabet)
                    .is_ok(),
                "strong soundness violated"
            );
        }
    }

    #[test]
    fn hiding_odd_cycle_in_the_neighborhood_graph() {
        // The Figs. 3/4 phenomenon: mixing hidden and revealing accepting
        // labelings of P4 (both polarities, all port assignments) yields
        // an odd closed walk in V(D, ·).
        let g = generators::path(4);
        let mut universe = Vec::new();
        for ports in hiding_lcp_graph::ports::all_port_assignments(&g, 100) {
            let inst = Instance::new(
                g.clone(),
                ports,
                hiding_lcp_graph::IdAssignment::canonical(4),
            )
            .unwrap();
            for labeling in accepting_labelings(&inst) {
                universe.push(inst.clone().with_labeling(labeling));
            }
        }
        let nbhd = NbhdGraph::build(&DegreeOneDecoder, IdMode::Anonymous, universe, |g| {
            bipartite::is_bipartite(g) && g.min_degree() == Some(1)
        });
        let odd = nbhd
            .odd_cycle()
            .expect("Lemma 4.1's decoder must hide: V(D, ·) contains an odd closed walk");
        assert_eq!(odd.len() % 2, 1);
    }

    #[test]
    fn hiding_certified_over_exhaustive_small_universe() {
        // Full Lemma 3.1 sweep at n <= 4 over the 4-letter alphabet,
        // restricted to the promise class.
        let alphabet = vec![
            Letter::Zero.encode(),
            Letter::One.encode(),
            Letter::Bot.encode(),
            Letter::Top.encode(),
        ];
        let universe = sources::exhaustive_universe(4, &alphabet);
        let nbhd = NbhdGraph::build(&DegreeOneDecoder, IdMode::Anonymous, universe, |g| {
            bipartite::is_bipartite(g) && g.min_degree() == Some(1)
        });
        assert!(nbhd.view_count() > 0);
        assert!(nbhd.odd_cycle().is_some());
    }

    #[test]
    fn rejects_forged_bot_on_high_degree_nodes() {
        // Plant ⊥ on a degree-2 node of a path: it must reject.
        let inst = Instance::canonical(generators::path(4));
        let labeling = Labeling::new(vec![
            Letter::Zero.encode(),
            Letter::Bot.encode(),
            Letter::Top.encode(),
            Letter::Zero.encode(),
        ]);
        let verdicts =
            hiding_lcp_core::decoder::run(&DegreeOneDecoder, &inst.with_labeling(labeling));
        assert!(!verdicts[1].is_accept(), "⊥ with degree 2 rejects");
    }

    #[test]
    fn rejects_top_with_two_bots() {
        let inst = Instance::canonical(generators::star(2));
        let labeling = Labeling::new(vec![
            Letter::Top.encode(),
            Letter::Bot.encode(),
            Letter::Bot.encode(),
        ]);
        let verdicts =
            hiding_lcp_core::decoder::run(&DegreeOneDecoder, &inst.with_labeling(labeling));
        assert!(!verdicts[0].is_accept());
    }

    #[test]
    fn rejects_mismatched_beta_at_top() {
        // ⊤ whose colored neighbors disagree (β not unique).
        let inst = Instance::canonical(generators::star(3));
        let labeling = Labeling::new(vec![
            Letter::Top.encode(),
            Letter::Bot.encode(),
            Letter::Zero.encode(),
            Letter::One.encode(),
        ]);
        let verdicts =
            hiding_lcp_core::decoder::run(&DegreeOneDecoder, &inst.with_labeling(labeling));
        assert!(!verdicts[0].is_accept());
    }
}
