//! A deliberately *cheating* decoder for the Theorem 1.5 pipeline
//! (experiment E9): accepts any locally-proper 3-edge-coloring on
//! subcubic views.
//!
//! This is the natural 3-color generalization of the Lemma 4.2 scheme —
//! and exactly the kind of decoder Theorem 1.5 rules out: it is *hiding*
//! (a single 1-edge-colored `K₂` already puts a self-loop into
//! `V(D, ·)`), it is complete on 3-edge-colorable bipartite graphs, but it
//! is **not strongly sound**: `K₄` is 3-edge-colorable, so all four nodes
//! of a properly edge-colored `K₄` accept while inducing an odd cycle.

use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};

/// A decoded edge-3-coloring certificate: per port `1..=d` (`d ≤ 3`) the
/// far-end port and a color in `{0, 1, 2}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edge3Label {
    /// `(far_port, color)` for each port, in port order.
    pub entries: Vec<(u8, u8)>,
}

impl Edge3Label {
    /// Decodes; `None` if malformed (more than 3 entries, ports outside
    /// `1..=3`, colors outside `0..=2`, or repeated colors).
    pub fn decode(cert: &Certificate) -> Option<Edge3Label> {
        let b = cert.bytes();
        let d = usize::from(*b.first()?);
        if d > 3 || b.len() != 1 + 2 * d {
            return None;
        }
        let entries: Vec<(u8, u8)> = b[1..].chunks(2).map(|c| (c[0], c[1])).collect();
        let valid = entries.iter().all(|&(p, c)| (1..=3).contains(&p) && c <= 2);
        let mut colors: Vec<u8> = entries.iter().map(|&(_, c)| c).collect();
        colors.sort_unstable();
        colors.dedup();
        (valid && colors.len() == entries.len()).then_some(Edge3Label { entries })
    }

    /// Encodes to a certificate.
    pub fn encode(&self) -> Certificate {
        let mut bytes = vec![u8::try_from(self.entries.len()).expect("<= 3 entries")];
        for &(p, c) in &self.entries {
            bytes.push(p);
            bytes.push(c);
        }
        Certificate::from_bytes(bytes)
    }
}

/// The cheating edge-3-coloring decoder (anonymous, one round).
#[derive(Debug, Clone, Copy, Default)]
pub struct Edge3Decoder;

impl Decoder for Edge3Decoder {
    fn name(&self) -> String {
        "edge-3-coloring (cheating)".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, view: &View) -> Verdict {
        let d = view.center_degree();
        if d > 3 || d == 0 {
            return Verdict::Reject;
        }
        let Some(mine) = Edge3Label::decode(view.center_label()) else {
            return Verdict::Reject;
        };
        if mine.entries.len() != d {
            return Verdict::Reject;
        }
        for arc in view.center_arcs() {
            let (far_port, color) = mine.entries[usize::from(arc.port_here) - 1];
            if u16::from(far_port) != arc.port_there {
                return Verdict::Reject;
            }
            let Some(nbr) = Edge3Label::decode(&view.node(arc.to).label) else {
                return Verdict::Reject;
            };
            let Some(&(np, nc)) = nbr.entries.get(usize::from(arc.port_there) - 1) else {
                return Verdict::Reject;
            };
            if u16::from(np) != arc.port_here || nc != color {
                return Verdict::Reject;
            }
        }
        Verdict::Accept
    }
}

/// An honest prover: greedy proper 3-edge-coloring (exists on every
/// subcubic graph we use; declines when the greedy search fails).
#[derive(Debug, Clone, Copy, Default)]
pub struct Edge3Prover;

impl Prover for Edge3Prover {
    fn name(&self) -> String {
        "edge-3-coloring (cheating)".into()
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        let g = instance.graph();
        if g.max_degree().unwrap_or(0) > 3 || g.min_degree().unwrap_or(0) == 0 {
            return None;
        }
        let edges: Vec<(usize, usize)> = g.edges().collect();
        let mut colors = vec![usize::MAX; edges.len()];
        if !color_edges(&edges, 0, &mut colors) {
            return None;
        }
        let color_of: std::collections::HashMap<(usize, usize), u8> = edges
            .iter()
            .enumerate()
            .flat_map(|(i, &(u, v))| {
                let c = colors[i] as u8;
                [((u, v), c), ((v, u), c)]
            })
            .collect();
        let labels = g
            .nodes()
            .map(|v| {
                let entries = (1..=g.degree(v) as u16)
                    .map(|p| {
                        let w = instance.ports().neighbor_at(v, p);
                        (instance.ports().port_to(w, v) as u8, color_of[&(v, w)])
                    })
                    .collect();
                Edge3Label { entries }.encode()
            })
            .collect();
        Some(labels)
    }
}

/// Backtracking proper 3-edge-coloring.
fn color_edges(edges: &[(usize, usize)], idx: usize, colors: &mut Vec<usize>) -> bool {
    if idx == edges.len() {
        return true;
    }
    let (u, v) = edges[idx];
    'next: for c in 0..3 {
        for (j, &(a, b)) in edges[..idx].iter().enumerate() {
            if colors[j] == c && (a == u || a == v || b == u || b == v) {
                continue 'next;
            }
        }
        colors[idx] = c;
        if color_edges(edges, idx + 1, colors) {
            return true;
        }
        colors[idx] = usize::MAX;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiding_lcp_core::decoder::accepts_all;
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::lower::{refute, RefutationOutcome};
    use hiding_lcp_core::nbhd::NbhdGraph;
    use hiding_lcp_core::properties::strong;
    use hiding_lcp_graph::algo::bipartite;
    use hiding_lcp_graph::generators;

    #[test]
    fn accepts_proper_edge_colorings() {
        for g in [
            generators::path(2),
            generators::cycle(6),
            generators::complete_bipartite(3, 3),
            generators::hypercube(3),
            generators::complete(4),
        ] {
            let inst = Instance::canonical(g);
            let labeling = Edge3Prover.certify(&inst).expect("3-edge-colorable");
            assert!(accepts_all(&Edge3Decoder, &inst.with_labeling(labeling)));
        }
    }

    #[test]
    fn k4_breaks_strong_soundness() {
        // The decoder is NOT strong: a properly edge-colored K4 is
        // unanimously accepted but induces odd cycles.
        let two_col = KCol::new(2);
        let inst = Instance::canonical(generators::complete(4));
        let labeling = Edge3Prover.certify(&inst).unwrap();
        let violation = strong::strong_holds_for(&Edge3Decoder, &two_col, &inst, &labeling)
            .expect_err("K4 accepted in full");
        assert_eq!(violation.accepting, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hiding_via_single_edge_self_loop() {
        // K2 with a 1-edge-coloring: both endpoints share the anonymous
        // view — a self-loop in V(D, ·).
        let inst = Instance::canonical(generators::path(2));
        let labeling = Edge3Prover.certify(&inst).unwrap();
        let nbhd = NbhdGraph::build(
            &Edge3Decoder,
            IdMode::Anonymous,
            vec![inst.with_labeling(labeling)],
            bipartite::is_bipartite,
        );
        assert_eq!(nbhd.odd_cycle(), Some(vec![0]));
    }

    #[test]
    fn theorem_1_5_refutation_pipeline() {
        // The full E9 drive: hiding witness + strong-soundness violation.
        let universe: Vec<_> = [
            generators::path(2),
            generators::complete_bipartite(3, 3),
            generators::hypercube(3),
        ]
        .into_iter()
        .filter_map(|g| {
            let inst = Instance::canonical(g);
            let labeling = Edge3Prover.certify(&inst)?;
            Some(inst.with_labeling(labeling))
        })
        .collect();
        let k4 = Instance::canonical(generators::complete(4));
        let k4_labeling = Edge3Prover.certify(&k4).unwrap();
        let outcome = refute(
            &Edge3Decoder,
            universe,
            IdMode::Anonymous,
            bipartite::is_bipartite,
            &[(k4, vec![k4_labeling])],
        );
        let RefutationOutcome::Refuted(refutation) = outcome else {
            panic!("expected a refutation, got {outcome:?}");
        };
        assert_eq!(refutation.odd_walk.len() % 2, 1);
        assert!(
            !refutation.via_realization,
            "found through the adversarial route"
        );
        assert!(!bipartite::is_bipartite(
            refutation.violation_instance.graph()
        ));
    }

    #[test]
    fn rejects_color_repetition_and_degree_overflow() {
        // Repeated colors are malformed.
        let bad = Edge3Label {
            entries: vec![(1, 0), (2, 0)],
        };
        assert_eq!(Edge3Label::decode(&bad.encode()), None);
        // Degree-4 nodes always reject.
        let inst = Instance::canonical(generators::star(4));
        let labeling = Labeling::uniform(
            5,
            Edge3Label {
                entries: vec![(1, 0)],
            }
            .encode(),
        );
        let verdicts = hiding_lcp_core::decoder::run(&Edge3Decoder, &inst.with_labeling(labeling));
        assert!(!verdicts[0].is_accept());
    }

    #[test]
    fn koenig_guarantees_random_cubic_bipartite_instances() {
        // König's edge-coloring theorem: every bipartite d-regular graph
        // is d-edge-colorable, so the prover must succeed on every random
        // cubic bipartite instance — and the decoder must accept.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2718);
        for seed in 0..10u64 {
            let g = generators::random_bipartite_regular(4 + (seed as usize % 3), 3, &mut rng);
            let inst = Instance::canonical(g);
            let labeling = Edge3Prover
                .certify(&inst)
                .expect("König: bipartite cubic graphs are 3-edge-colorable");
            assert!(accepts_all(&Edge3Decoder, &inst.with_labeling(labeling)));
        }
    }

    #[test]
    fn prover_declines_non_subcubic_or_uncolorable() {
        assert!(Edge3Prover
            .certify(&Instance::canonical(generators::star(4)))
            .is_none());
        // K4 minus nothing is colorable; the Petersen graph is famously
        // NOT 3-edge-colorable (class 2).
        assert!(Edge3Prover
            .certify(&Instance::canonical(generators::petersen()))
            .is_none());
        assert!(Edge3Prover
            .certify(&Instance::canonical(generators::complete(4)))
            .is_some());
    }
}
