//! The Theorem 1.3 LCP: strong and hiding certification of 2-colorability
//! on graphs admitting a *shatter point* (a node `v` with `G − N[v]`
//! disconnected), with `O(min{Δ², n} + log n)`-bit certificates.
//!
//! The prover names the shatter point (type 0), its neighborhood (type 1,
//! carrying the vector of colors the neighborhood sees in each component
//! of `G − N[v]`), and everyone else (type 2, carrying its component
//! number and color). The shatter point and its neighborhood receive **no
//! color** — the coloring is hidden there — and Lemma 7.1 guarantees the
//! local checks imply bipartiteness.

use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::{Instance, LabeledInstance};
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::algo::bipartite;
use hiding_lcp_graph::classes::shatter;
use hiding_lcp_graph::{IdAssignment, PortAssignment};

/// The number of bytes needed to encode identifiers below `bound` — the
/// certificate schemes embed identifiers at this minimal width, which is
/// what makes their sizes `Θ(log n)` rather than a fixed machine width.
pub fn id_width(bound: u64) -> usize {
    let bits = 64 - bound.leading_zeros() as usize;
    bits.div_ceil(8).max(1)
}

fn encode_id(bytes: &mut Vec<u8>, id: u64, width: usize) {
    bytes.extend_from_slice(&id.to_be_bytes()[8 - width..]);
}

fn decode_id(bytes: &[u8], off: usize, width: usize) -> Option<u64> {
    let slice = bytes.get(off..off + width)?;
    let mut out = 0u64;
    for &b in slice {
        out = out << 8 | u64::from(b);
    }
    Some(out)
}

/// A decoded Theorem 1.3 certificate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ShatterLabel {
    /// Type 0: "I am the shatter point"; carries its own identifier.
    Point {
        /// The claimed identifier of the shatter point.
        id: u64,
    },
    /// Type 1: "I neighbor the shatter point"; carries the shatter
    /// point's identifier and the per-component colors seen by `N(v)`.
    Neighborhood {
        /// The claimed identifier of the shatter point.
        id: u64,
        /// `colors[i]` = the color every `N(v)`-adjacent node of component
        /// `i` carries.
        colors: Vec<u8>,
    },
    /// Type 2: "I live in component `component` of `G − N[v]` with color
    /// `color`".
    Component {
        /// The claimed identifier of the shatter point.
        id: u64,
        /// 0-based component number.
        component: u8,
        /// The node's color in the component's 2-coloring.
        color: u8,
    },
}

impl ShatterLabel {
    /// Decodes a certificate whose identifiers are `width` bytes wide;
    /// `None` if malformed.
    pub fn decode(cert: &Certificate, width: usize) -> Option<ShatterLabel> {
        let b = cert.bytes();
        let tag = *b.first()?;
        match tag {
            0 => {
                if b.len() != 1 + width {
                    return None;
                }
                Some(ShatterLabel::Point {
                    id: decode_id(b, 1, width)?,
                })
            }
            1 => {
                let id = decode_id(b, 1, width)?;
                let k = usize::from(*b.get(1 + width)?);
                let colors = b.get(2 + width..2 + width + k)?.to_vec();
                (b.len() == 2 + width + k && colors.iter().all(|&c| c <= 1))
                    .then_some(ShatterLabel::Neighborhood { id, colors })
            }
            2 => {
                let id = decode_id(b, 1, width)?;
                let component = *b.get(1 + width)?;
                let color = *b.get(2 + width)?;
                (b.len() == 3 + width && color <= 1).then_some(ShatterLabel::Component {
                    id,
                    component,
                    color,
                })
            }
            _ => None,
        }
    }

    /// Encodes to a certificate with `width`-byte identifiers.
    ///
    /// # Panics
    ///
    /// Panics if an identifier does not fit in `width` bytes.
    pub fn encode(&self, width: usize) -> Certificate {
        assert!(
            self.claimed_id() < 1u64.checked_shl(8 * width as u32).unwrap_or(u64::MAX)
                || width >= 8,
            "identifier too wide for the certificate"
        );
        let mut bytes = Vec::new();
        match self {
            ShatterLabel::Point { id } => {
                bytes.push(0);
                encode_id(&mut bytes, *id, width);
            }
            ShatterLabel::Neighborhood { id, colors } => {
                bytes.push(1);
                encode_id(&mut bytes, *id, width);
                bytes.push(u8::try_from(colors.len()).expect("at most 255 components"));
                bytes.extend_from_slice(colors);
            }
            ShatterLabel::Component {
                id,
                component,
                color,
            } => {
                bytes.push(2);
                encode_id(&mut bytes, *id, width);
                bytes.push(*component);
                bytes.push(*color);
            }
        }
        Certificate::from_bytes(bytes)
    }

    /// The claimed shatter-point identifier.
    pub fn claimed_id(&self) -> u64 {
        match self {
            ShatterLabel::Point { id }
            | ShatterLabel::Neighborhood { id, .. }
            | ShatterLabel::Component { id, .. } => *id,
        }
    }
}

/// The one-round decoder of Theorem 1.3 (identifier-reading).
///
/// # Example
///
/// ```
/// use hiding_lcp_certs::shatter::{ShatterDecoder, ShatterProver};
/// use hiding_lcp_core::decoder::accepts_all;
/// use hiding_lcp_core::instance::Instance;
/// use hiding_lcp_core::prover::Prover;
/// use hiding_lcp_graph::generators;
///
/// // The interior of a long path is a shatter point.
/// let instance = Instance::canonical(generators::path(8));
/// let labeling = ShatterProver.certify(&instance).expect("P8 shatters");
/// assert!(accepts_all(&ShatterDecoder, &instance.with_labeling(labeling)));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ShatterDecoder;

impl Decoder for ShatterDecoder {
    fn name(&self) -> String {
        "shatter point (Theorem 1.3)".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Full
    }
    fn decide(&self, view: &View) -> Verdict {
        let width = id_width(view.id_bound());
        let Some(mine) = ShatterLabel::decode(view.center_label(), width) else {
            return Verdict::Reject;
        };
        let neighbors: Option<Vec<ShatterLabel>> = view
            .center_arcs()
            .iter()
            .map(|arc| ShatterLabel::decode(&view.node(arc.to).label, width))
            .collect();
        let Some(neighbors) = neighbors else {
            return Verdict::Reject;
        };
        let my_id = view.center_id().expect("Full id mode");
        let accept = match &mine {
            // Rule 1: the shatter point checks its own identifier and that
            // all neighbors are type 1 with identical content naming it.
            ShatterLabel::Point { id } => *id == my_id
                && neighbors.iter().all(
                    |w| matches!(w, ShatterLabel::Neighborhood { id: wid, .. } if *wid == my_id),
                )
                && neighbors.windows(2).all(|pair| pair[0] == pair[1]),
            // Rule 2: a neighborhood node.
            ShatterLabel::Neighborhood { id, colors } => {
                // (a) no type-1 neighbor.
                let no_type1 = neighbors
                    .iter()
                    .all(|w| !matches!(w, ShatterLabel::Neighborhood { .. }));
                // (b) exactly one type-0 neighbor, naming the same point.
                let points: Vec<&ShatterLabel> = neighbors
                    .iter()
                    .filter(|w| matches!(w, ShatterLabel::Point { .. }))
                    .collect();
                let one_point = points.len() == 1 && points[0].claimed_id() == *id;
                // (c) type-2 neighbors agree with the colors vector.
                let comps_ok = neighbors.iter().all(|w| match w {
                    ShatterLabel::Component {
                        id: wid,
                        component,
                        color,
                    } => *wid == *id && colors.get(usize::from(*component)) == Some(color),
                    _ => true,
                });
                no_type1 && one_point && comps_ok
            }
            // Rule 3: a component node.
            ShatterLabel::Component {
                id,
                component,
                color,
            } => {
                neighbors.iter().all(|w| match w {
                    // (a) no type-0 neighbor.
                    ShatterLabel::Point { .. } => false,
                    // (b) type-1 neighbors name the same point and expect
                    // my color in my component.
                    ShatterLabel::Neighborhood { id: wid, colors } => {
                        *wid == *id && colors.get(usize::from(*component)) == Some(color)
                    }
                    // (c) type-2 neighbors share point and component but
                    // not color.
                    ShatterLabel::Component {
                        id: wid,
                        component: wc,
                        color: wx,
                    } => *wid == *id && *wc == *component && *wx != *color,
                })
            }
        };
        Verdict::from(accept)
    }
}

/// The Theorem 1.3 prover, hiding the coloring at the smallest shatter
/// point.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShatterProver;

impl Prover for ShatterProver {
    fn name(&self) -> String {
        "shatter point (Theorem 1.3)".into()
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        let point = *shatter::shatter_points(instance.graph()).first()?;
        certify_at(instance, point)
    }
}

/// The completeness construction at a prescribed shatter point. Returns
/// `None` if `point` does not shatter the graph or the graph is not
/// bipartite.
pub fn certify_at(instance: &Instance, point: usize) -> Option<Labeling> {
    let g = instance.graph();
    if !bipartite::is_bipartite(g) {
        return None;
    }
    let decomposition = shatter::decompose_at(g, point)?;
    let point_id = instance.ids().id(point);
    let width = id_width(instance.ids().bound());
    let mut labels = Labeling::empty(g.node_count());
    labels.set(point, ShatterLabel::Point { id: point_id }.encode(width));
    // Per-component 2-colorings and the colors vector.
    let mut colors = vec![0u8; decomposition.components.len()];
    let mut node_color: Vec<Option<u8>> = vec![None; g.node_count()];
    for (i, comp) in decomposition.components.iter().enumerate() {
        let (sub, map) = g.induced(comp);
        let sides = bipartite::bipartition(&sub).ok()?;
        for (new, &old) in map.iter().enumerate() {
            node_color[old] = Some(sides[new]);
        }
        // The color the neighborhood sees: any component node adjacent to
        // N(v); Lemma 7.1(3) makes the choice consistent.
        let seen = map.iter().enumerate().find(|(_, &old)| {
            g.neighbors(old)
                .iter()
                .any(|w| decomposition.neighborhood.contains(w))
        });
        colors[i] = match seen {
            Some((new, _)) => sides[new],
            None => 0,
        };
    }
    let nbhd_label = ShatterLabel::Neighborhood {
        id: point_id,
        colors,
    }
    .encode(width);
    for &u in &decomposition.neighborhood {
        labels.set(u, nbhd_label.clone());
    }
    for (i, comp) in decomposition.components.iter().enumerate() {
        for &u in comp {
            labels.set(
                u,
                ShatterLabel::Component {
                    id: point_id,
                    component: u8::try_from(i).ok()?,
                    color: node_color[u].expect("component node colored"),
                }
                .encode(width),
            );
        }
    }
    Some(labels)
}

/// The hiding witness of Theorem 1.3's proof: the two labeled paths `P₁`
/// (8 nodes) and `P₂` (7 nodes) sharing identifiers, ports and the views
/// of their extremal nodes `w₃` and `z₂`, which sit at odd distance in
/// `P₁` and even distance in `P₂` — forcing an odd closed walk in
/// `V(D, 8)`.
pub fn hiding_witness_instances() -> Vec<LabeledInstance> {
    let width = id_width(64);
    let idv = 5u64; // identifier of the shatter point v
    let lbl_point = ShatterLabel::Point { id: idv };
    let nbhd = |colors: Vec<u8>| ShatterLabel::Neighborhood { id: idv, colors };
    let comp = |component: u8, color: u8| ShatterLabel::Component {
        id: idv,
        component,
        color,
    };
    // P1: w3 w2 w1 u1 v u2 z1 z2 with ids 1..8.
    let p1 = {
        let g = hiding_lcp_graph::generators::path(8);
        let ports = PortAssignment::canonical(&g);
        let ids = IdAssignment::from_ids((1..=8).collect(), 64).expect("injective");
        let inst = Instance::new(g, ports, ids).expect("valid");
        let labels = Labeling::new(
            [
                comp(0, 0),        // w3
                comp(0, 1),        // w2
                comp(0, 0),        // w1
                nbhd(vec![0, 0]),  // u1
                lbl_point.clone(), // v
                nbhd(vec![0, 0]),  // u2
                comp(1, 0),        // z1
                comp(1, 1),        // z2
            ]
            .iter()
            .map(|l| l.encode(width))
            .collect(),
        );
        inst.with_labeling(labels)
    };
    // P2: w3 w2 u1 v u2 z1 z2 with ids 1,2,4,5,6,7,8 (w1 removed).
    let p2 = {
        let g = hiding_lcp_graph::generators::path(7);
        let ports = PortAssignment::canonical(&g);
        let ids = IdAssignment::from_ids(vec![1, 2, 4, 5, 6, 7, 8], 64).expect("injective");
        let inst = Instance::new(g, ports, ids).expect("valid");
        let labels = Labeling::new(
            [
                comp(0, 0),       // w3
                comp(0, 1),       // w2
                nbhd(vec![1, 0]), // u1
                lbl_point,        // v
                nbhd(vec![1, 0]), // u2
                comp(1, 0),       // z1
                comp(1, 1),       // z2
            ]
            .iter()
            .map(|l| l.encode(width))
            .collect(),
        );
        inst.with_labeling(labels)
    };
    vec![p1, p2]
}

/// Structured adversarial labelings used by the soundness experiments.
pub fn adversary_labelings(instance: &Instance) -> Vec<Labeling> {
    let g = instance.graph();
    let n = g.node_count();
    let width = id_width(instance.ids().bound());
    let mut out = Vec::new();
    // Everyone claims to be the shatter point.
    out.push(
        g.nodes()
            .map(|v| {
                ShatterLabel::Point {
                    id: instance.ids().id(v),
                }
                .encode(width)
            })
            .collect(),
    );
    // One arbitrary "point" with everyone else a monochromatic component.
    for color in 0..=1u8 {
        let point_id = instance.ids().id(0);
        let mut labels = Labeling::empty(n);
        labels.set(0, ShatterLabel::Point { id: point_id }.encode(width));
        for v in 1..n {
            labels.set(
                v,
                ShatterLabel::Component {
                    id: point_id,
                    component: 0,
                    color,
                }
                .encode(width),
            );
        }
        out.push(labels);
    }
    // Two-colored single component with no point at all.
    for polarity in 0..=1u8 {
        let point_id = instance.ids().bound(); // a non-existent identifier
        out.push(
            g.nodes()
                .map(|v| {
                    ShatterLabel::Component {
                        id: point_id,
                        component: 0,
                        color: (v as u8 + polarity) % 2,
                    }
                    .encode(width)
                })
                .collect(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiding_lcp_core::decoder::{accepts_all, run};
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::nbhd::NbhdGraph;
    use hiding_lcp_core::properties::{completeness, strong};
    use hiding_lcp_graph::{generators, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spider() -> Graph {
        Graph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (0, 4),
                (4, 5),
                (5, 6),
                (0, 7),
                (7, 8),
                (8, 9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn complete_on_shatter_point_graphs() {
        let instances = [
            Instance::canonical(generators::path(8)),
            Instance::canonical(spider()),
            Instance::canonical(generators::caterpillar(5, 1)),
            Instance::canonical(generators::grid(1, 9)),
        ];
        let report = completeness::check_completeness(&ShatterDecoder, &ShatterProver, instances);
        assert!(report.all_passed(), "{:?}", report.failures);
    }

    #[test]
    fn every_shatter_point_choice_works() {
        let inst = Instance::canonical(generators::path(8));
        for point in shatter::shatter_points(inst.graph()) {
            let labeling = certify_at(&inst, point).expect("valid shatter point");
            assert!(accepts_all(
                &ShatterDecoder,
                &inst.clone().with_labeling(labeling)
            ));
        }
    }

    #[test]
    fn declines_without_shatter_point_or_bipartiteness() {
        assert!(ShatterProver
            .certify(&Instance::canonical(generators::cycle(8)))
            .is_none());
        assert!(
            ShatterProver
                .certify(&Instance::canonical(generators::pendant_path(5, 3)))
                .is_none(),
            "shatter point exists but C5 is odd"
        );
    }

    #[test]
    fn certificate_size_scales_with_components_plus_log_n() {
        // k components -> 2 + width + k bytes on type-1 nodes; the spider
        // has 10 nodes, bound 100, so identifiers take 1 byte.
        let inst = Instance::canonical(spider());
        let labeling = ShatterProver.certify(&inst).unwrap();
        assert_eq!(labeling.max_bits(), (2 + 1 + 3) * 8);
    }

    #[test]
    fn strong_soundness_structured_and_random() {
        let two_col = KCol::new(2);
        let mut rng = StdRng::seed_from_u64(31);
        for g in [
            generators::cycle(3),
            generators::cycle(5),
            generators::pendant_path(5, 3),
            generators::complete(4),
            generators::path(8),
        ] {
            let inst = Instance::canonical(g);
            for labeling in adversary_labelings(&inst) {
                assert!(
                    strong::strong_holds_for(&ShatterDecoder, &two_col, &inst, &labeling).is_ok()
                );
            }
            // Random adversaries over honest letter material.
            let alphabet: Vec<Certificate> = adversary_labelings(&inst)
                .iter()
                .flat_map(|l| l.as_slice().to_vec())
                .collect();
            assert!(strong::check_strong_random(
                &ShatterDecoder,
                &two_col,
                &inst,
                &alphabet,
                800,
                &mut rng
            )
            .is_ok());
        }
    }

    #[test]
    fn hiding_witness_instances_are_accepted_and_yield_an_odd_walk() {
        let witnesses = hiding_witness_instances();
        for li in &witnesses {
            assert!(
                accepts_all(&ShatterDecoder, li),
                "the proof's instances are unanimously accepted"
            );
        }
        // The proof's view coincidences: w3 (node 0) and z2 (last node)
        // have identical views in P1 and P2.
        let (p1, p2) = (&witnesses[0], &witnesses[1]);
        assert_eq!(
            p1.view(0, 1, IdMode::Full),
            p2.view(0, 1, IdMode::Full),
            "w3's views coincide"
        );
        assert_eq!(
            p1.view(7, 1, IdMode::Full),
            p2.view(6, 1, IdMode::Full),
            "z2's views coincide"
        );
        // Lemma 3.2: V(D, 8) contains an odd closed walk.
        let nbhd = NbhdGraph::build(&ShatterDecoder, IdMode::Full, witnesses, |g| {
            bipartite::is_bipartite(g)
        });
        let odd = nbhd.odd_cycle().expect("Theorem 1.3's decoder hides");
        assert_eq!(odd.len() % 2, 1);
    }

    #[test]
    fn rejects_forged_points_and_wrong_vectors() {
        let inst = Instance::canonical(generators::path(8));
        let honest = ShatterProver.certify(&inst).unwrap();
        // Forge: point claims a wrong identifier.
        let point = shatter::shatter_points(inst.graph())[0];
        let mut forged = honest.clone();
        let width = id_width(inst.ids().bound());
        forged.set(point, ShatterLabel::Point { id: 63 }.encode(width));
        let verdicts = run(&ShatterDecoder, &inst.clone().with_labeling(forged));
        assert!(!verdicts[point].is_accept());
        // Forge: flip one component node's color.
        let comp_node = 0;
        let mut flipped = honest.clone();
        let ShatterLabel::Component {
            id,
            component,
            color,
        } = ShatterLabel::decode(honest.label(comp_node), width).unwrap()
        else {
            panic!("node 0 is a component node");
        };
        flipped.set(
            comp_node,
            ShatterLabel::Component {
                id,
                component,
                color: color ^ 1,
            }
            .encode(width),
        );
        let verdicts = run(&ShatterDecoder, &inst.with_labeling(flipped));
        assert!(verdicts.iter().any(|v| !v.is_accept()));
    }

    #[test]
    fn codec_roundtrip() {
        for width in [1usize, 2, 4, 8] {
            for label in [
                ShatterLabel::Point { id: 42 },
                ShatterLabel::Neighborhood {
                    id: 7,
                    colors: vec![0, 1, 1],
                },
                ShatterLabel::Component {
                    id: 9,
                    component: 2,
                    color: 1,
                },
            ] {
                assert_eq!(
                    ShatterLabel::decode(&label.encode(width), width),
                    Some(label)
                );
            }
        }
        assert_eq!(ShatterLabel::decode(&Certificate::from_byte(5), 1), None);
        assert_eq!(ShatterLabel::decode(&Certificate::empty(), 1), None);
        // Colors above 1 are malformed.
        let bad = ShatterLabel::Neighborhood {
            id: 1,
            colors: vec![2],
        }
        .encode(1);
        assert_eq!(ShatterLabel::decode(&bad, 1), None);
        // Width-dependent ids: a 2-byte id round-trips only at width 2.
        let wide = ShatterLabel::Point { id: 300 }.encode(2);
        assert_eq!(
            ShatterLabel::decode(&wide, 2),
            Some(ShatterLabel::Point { id: 300 })
        );
        assert_eq!(ShatterLabel::decode(&wide, 1), None);
    }

    #[test]
    fn id_width_scaling() {
        assert_eq!(id_width(1), 1);
        assert_eq!(id_width(255), 1);
        assert_eq!(id_width(256), 2);
        assert_eq!(id_width(1 << 16), 3);
        assert_eq!(id_width(u64::MAX), 8);
    }
}
