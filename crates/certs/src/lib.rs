//! The concrete LCPs of *"Strong and Hiding Distributed Certification of
//! k-Coloring"* (Modanese, Montealegre, Ríos-Wilson; PODC 2025), plus
//! baselines and adversaries.
//!
//! Each module packages one LCP as a typed label codec, a
//! [`Prover`](hiding_lcp_core::prover::Prover) implementing the paper's
//! completeness construction, and a
//! [`Decoder`](hiding_lcp_core::decoder::Decoder) transcribing the paper's
//! accept/reject rules:
//!
//! * [`revealing`] — the trivial `⌈log k⌉`-bit color-revealing LCP the
//!   paper contrasts with (complete, strongly sound, **not** hiding);
//! * [`degree_one`] — Lemma 4.1: hide the 2-coloring at a degree-one node
//!   using labels `{0, 1, ⊥, ⊤}` (anonymous, constant size);
//! * [`even_cycle`] — Lemma 4.2: reveal a 2-*edge*-coloring of an even
//!   cycle through port pairs, hiding the 2-coloring *everywhere*
//!   (anonymous, constant size);
//! * [`union`] — Theorem 1.1: the tagged combination of the two for the
//!   class H₁ ∪ H₂;
//! * [`shatter`] — Theorem 1.3: graphs with a shatter point,
//!   `O(min{Δ², n} + log n)`-bit certificates;
//! * [`watermelon`] — Theorem 1.4: watermelon graphs, `O(log n)`-bit
//!   certificates;
//! * [`edge3`] — a deliberately *non-strong* "cheating" decoder (accepts
//!   locally-proper 3-edge-colorings) driving the Theorem 1.5 refutation
//!   pipeline of experiment E9;
//! * [`universal`] — the Section 1.1 universal adjacency-matrix LCP
//!   (O(n²) bits, maximally non-hiding baseline);
//! * [`adversary`] — structured malicious provers shared by the soundness
//!   experiments.

pub mod adversary;
pub mod degree_one;
pub mod edge3;
pub mod even_cycle;
pub mod revealing;
pub mod shatter;
pub mod union;
pub mod universal;
pub mod watermelon;
