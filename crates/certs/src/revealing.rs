//! The trivial color-revealing LCP for k-coloring (paper, Section 1):
//! "give each node its color in a proper k-coloring" with `⌈log k⌉`-bit
//! certificates. Complete, strongly sound — and *not* hiding, which is the
//! paper's entire point of departure.

use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::algo::coloring;

/// The one-round anonymous decoder: accept iff the own certificate is a
/// color `< k` differing from every visible neighbor's.
#[derive(Debug, Clone, Copy)]
pub struct RevealingDecoder {
    k: usize,
}

impl RevealingDecoder {
    /// The k-coloring revealing decoder.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or above 255 (colors are one byte).
    pub fn new(k: usize) -> Self {
        assert!((1..=255).contains(&k), "k must be in 1..=255");
        RevealingDecoder { k }
    }

    fn color(&self, cert: &Certificate) -> Option<u8> {
        match cert.bytes() {
            [c] if usize::from(*c) < self.k => Some(*c),
            _ => None,
        }
    }
}

impl Decoder for RevealingDecoder {
    fn name(&self) -> String {
        format!("revealing-{}col", self.k)
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, view: &View) -> Verdict {
        let Some(mine) = self.color(view.center_label()) else {
            return Verdict::Reject;
        };
        Verdict::from(view.center_arcs().iter().all(|arc| {
            self.color(&view.node(arc.to).label)
                .is_some_and(|c| c != mine)
        }))
    }
    fn label_classes(&self, alphabet: &[Certificate]) -> Option<Vec<usize>> {
        // The decision only reads "is a color" and "equal colors":
        // recoloring by any bijection of the palette preserves both, so
        // valid colors form one interchangeable class and every malformed
        // certificate is its own class (conservative — malformed bytes
        // are all rejected anyway, but pinning them costs nothing).
        let mut next_fixed = 1;
        Some(
            alphabet
                .iter()
                .map(|cert| match self.color(cert) {
                    Some(_) => 0,
                    None => {
                        next_fixed += 1;
                        next_fixed - 1
                    }
                })
                .collect(),
        )
    }
}

/// The honest prover: hands out the lexicographically first proper
/// k-coloring.
#[derive(Debug, Clone, Copy)]
pub struct RevealingProver {
    k: usize,
}

impl RevealingProver {
    /// A prover matching [`RevealingDecoder::new`] with the same `k`.
    pub fn new(k: usize) -> Self {
        RevealingProver { k }
    }
}

impl Prover for RevealingProver {
    fn name(&self) -> String {
        format!("revealing-{}col", self.k)
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        let colors = coloring::lex_first_coloring(instance.graph(), self.k)?;
        Some(
            colors
                .iter()
                .map(|&c| Certificate::from_byte(c as u8))
                .collect(),
        )
    }
}

/// The certificate alphabet for adversarial sweeps: every color byte plus
/// one out-of-range byte.
pub fn adversary_alphabet(k: usize) -> Vec<Certificate> {
    (0..=k).map(|c| Certificate::from_byte(c as u8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiding_lcp_core::decoder::accepts_all;
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::properties::{completeness, strong};
    use hiding_lcp_graph::generators;

    #[test]
    fn complete_on_bipartite_graphs() {
        let decoder = RevealingDecoder::new(2);
        let prover = RevealingProver::new(2);
        let instances = [
            Instance::canonical(generators::cycle(8)),
            Instance::canonical(generators::grid(3, 4)),
            Instance::canonical(generators::balanced_tree(2, 3)),
            Instance::canonical(generators::hypercube(3)),
        ];
        let report = completeness::check_completeness(&decoder, &prover, instances);
        assert!(report.all_passed());
        assert_eq!(report.max_certificate_bits, 8);
    }

    #[test]
    fn three_coloring_variant() {
        let decoder = RevealingDecoder::new(3);
        let prover = RevealingProver::new(3);
        let inst = Instance::canonical(generators::petersen());
        let labeling = prover.certify(&inst).expect("Petersen is 3-colorable");
        assert!(accepts_all(&decoder, &inst.with_labeling(labeling)));
        assert!(RevealingProver::new(2)
            .certify(&Instance::canonical(generators::petersen()))
            .is_none());
    }

    #[test]
    fn strongly_sound_exhaustively_on_small_graphs() {
        let decoder = RevealingDecoder::new(2);
        let two_col = KCol::new(2);
        let alphabet = adversary_alphabet(2);
        for g in [
            generators::cycle(3),
            generators::cycle(5),
            generators::complete(4),
        ] {
            let inst = Instance::canonical(g);
            assert!(strong::check_strong_exhaustive(&decoder, &two_col, &inst, &alphabet).is_ok());
        }
    }

    #[test]
    fn rejects_malformed_certificates() {
        let decoder = RevealingDecoder::new(2);
        let inst = Instance::canonical(generators::path(2));
        let bad = Labeling::new(vec![
            Certificate::from_byte(2), // out of palette
            Certificate::from_byte(0),
        ]);
        let verdicts = hiding_lcp_core::decoder::run(&decoder, &inst.with_labeling(bad));
        assert!(!verdicts[0].is_accept());
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn zero_palette_rejected() {
        let _ = RevealingDecoder::new(0);
    }
}
