//! The Theorem 1.1 LCP: the union of the Lemma 4.1 (minimum degree one)
//! and Lemma 4.2 (even cycle) schemes for the class H₁ ∪ H₂.
//!
//! Certificates carry a one-byte routing tag followed by the sub-scheme
//! payload. A node accepts iff every visible certificate (its own and all
//! neighbors') carries its own tag and the tagged sub-decoder accepts the
//! payload view. Strong soundness composes: accepting nodes of different
//! tags are never adjacent, and each tag class induces a bipartite
//! subgraph by the sub-scheme's strong soundness.

use crate::degree_one::{DegreeOneDecoder, DegreeOneProver};
use crate::even_cycle::{EvenCycleDecoder, EvenCycleProver};
use hiding_lcp_core::decoder::{Decoder, Verdict};
use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use hiding_lcp_core::view::{IdMode, View};
use hiding_lcp_graph::algo::components::connected_components;

/// Routing tag for the degree-one scheme.
pub const TAG_DEGREE_ONE: u8 = 1;
/// Routing tag for the even-cycle scheme.
pub const TAG_EVEN_CYCLE: u8 = 2;

/// Prefixes a payload certificate with a tag byte.
pub fn tag_certificate(tag: u8, payload: &Certificate) -> Certificate {
    let mut bytes = Vec::with_capacity(1 + payload.bytes().len());
    bytes.push(tag);
    bytes.extend_from_slice(payload.bytes());
    Certificate::from_bytes(bytes)
}

fn split(cert: &Certificate) -> Option<(u8, Certificate)> {
    let bytes = cert.bytes();
    let (&tag, rest) = bytes.split_first()?;
    Some((tag, Certificate::from_bytes(rest.to_vec())))
}

/// The Theorem 1.1 union decoder (anonymous, one round, constant size).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnionDecoder;

impl Decoder for UnionDecoder {
    fn name(&self) -> String {
        "union H1 ∪ H2 (Theorem 1.1)".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Anonymous
    }
    fn decide(&self, view: &View) -> Verdict {
        let Some((tag, _)) = split(view.center_label()) else {
            return Verdict::Reject;
        };
        if tag != TAG_DEGREE_ONE && tag != TAG_EVEN_CYCLE {
            return Verdict::Reject;
        }
        // Everyone in sight must carry my tag.
        for arc in view.center_arcs() {
            match split(&view.node(arc.to).label) {
                Some((t, _)) if t == tag => {}
                _ => return Verdict::Reject,
            }
        }
        // Delegate to the tagged sub-decoder on the untagged view.
        let payload_view = view.map_labels(|cert| {
            split(cert)
                .map(|(_, payload)| payload)
                .unwrap_or_else(Certificate::empty)
        });
        match tag {
            TAG_DEGREE_ONE => DegreeOneDecoder.decide(&payload_view),
            _ => EvenCycleDecoder.decide(&payload_view),
        }
    }
}

/// The Theorem 1.1 prover: per connected component, the even-cycle scheme
/// on even-cycle components and the degree-one scheme elsewhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnionProver;

impl Prover for UnionProver {
    fn name(&self) -> String {
        "union H1 ∪ H2 (Theorem 1.1)".into()
    }
    fn certify(&self, instance: &Instance) -> Option<Labeling> {
        let g = instance.graph();
        let mut labels = Labeling::empty(g.node_count());
        for comp in connected_components(g) {
            // Build the component as a standalone instance (ports and ids
            // restricted), certify it, then copy labels back.
            let (sub, map) = g.induced(&comp);
            let sub_ports = instance.ports().restrict(&sub, &map);
            let sub_ids = instance.ids().restrict(&map);
            let sub_inst = Instance::new(sub, sub_ports, sub_ids)?;
            let (tag, sub_labels) =
                if hiding_lcp_graph::classes::simple::is_even_cycle(sub_inst.graph()) {
                    (TAG_EVEN_CYCLE, EvenCycleProver.certify(&sub_inst)?)
                } else if sub_inst.graph().node_count() == 1 {
                    // Isolated node: degenerate min-degree case; certify as
                    // a colored singleton under the degree-one scheme.
                    (
                        TAG_DEGREE_ONE,
                        Labeling::uniform(1, crate::degree_one::Letter::Zero.encode()),
                    )
                } else {
                    (TAG_DEGREE_ONE, DegreeOneProver.certify(&sub_inst)?)
                };
            for (new, &old) in map.iter().enumerate() {
                labels.set(old, tag_certificate(tag, sub_labels.label(new)));
            }
        }
        Some(labels)
    }
}

/// The union adversarial alphabet: both sub-alphabets under both tags,
/// plus untagged garbage.
pub fn adversary_alphabet() -> Vec<Certificate> {
    let mut out = Vec::new();
    for payload in crate::degree_one::adversary_alphabet() {
        out.push(tag_certificate(TAG_DEGREE_ONE, &payload));
        out.push(tag_certificate(TAG_EVEN_CYCLE, &payload));
    }
    for payload in crate::even_cycle::adversary_alphabet() {
        out.push(tag_certificate(TAG_EVEN_CYCLE, &payload));
    }
    out.push(Certificate::empty());
    out.push(Certificate::from_byte(7));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiding_lcp_core::decoder::accepts_all;
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::properties::{completeness, strong};
    use hiding_lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_instance() -> Instance {
        // A pendant tree ⊎ C6 ⊎ P5 ⊎ C4: squarely in H1 ∪ H2.
        let g = generators::caterpillar(3, 1)
            .disjoint_union(&generators::cycle(6))
            .disjoint_union(&generators::path(5))
            .disjoint_union(&generators::cycle(4));
        Instance::canonical(g)
    }

    #[test]
    fn complete_on_the_union_class() {
        let instances = [
            mixed_instance(),
            Instance::canonical(generators::cycle(8)),
            Instance::canonical(generators::path(6)),
            Instance::canonical(generators::star(4)),
        ];
        let report = completeness::check_completeness(&UnionDecoder, &UnionProver, instances);
        assert!(report.all_passed(), "{:?}", report.failures);
        // One tag byte + the 6-byte cycle payload.
        assert_eq!(report.max_certificate_bits, 56);
    }

    #[test]
    fn declines_outside_the_union_class() {
        for g in [
            generators::cycle(5),           // odd cycle
            generators::torus(3, 4),        // min degree 4, not a cycle
            generators::theta(2, 2, 2),     // min degree 2, not a cycle
            generators::pendant_path(5, 2), // pendant but odd cycle inside
        ] {
            assert!(
                UnionProver.certify(&Instance::canonical(g)).is_none(),
                "prover must decline non-members"
            );
        }
    }

    #[test]
    fn cross_tag_edges_reject() {
        // Tag a 2-colored P2 with different tags at its endpoints.
        let inst = Instance::canonical(generators::path(2));
        let labeling = Labeling::new(vec![
            tag_certificate(TAG_DEGREE_ONE, &crate::degree_one::Letter::Zero.encode()),
            tag_certificate(TAG_EVEN_CYCLE, &crate::degree_one::Letter::One.encode()),
        ]);
        let verdicts = hiding_lcp_core::decoder::run(&UnionDecoder, &inst.with_labeling(labeling));
        assert!(verdicts.iter().all(|v| !v.is_accept()));
    }

    #[test]
    fn strong_soundness_random_mixed() {
        let two_col = KCol::new(2);
        let alphabet = adversary_alphabet();
        let mut rng = StdRng::seed_from_u64(17);
        for g in [
            generators::cycle(3),
            generators::cycle(5).disjoint_union(&generators::path(3)),
            generators::pendant_path(3, 2),
            generators::complete(4),
        ] {
            let inst = Instance::canonical(g);
            assert!(strong::check_strong_random(
                &UnionDecoder,
                &two_col,
                &inst,
                &alphabet,
                1_500,
                &mut rng
            )
            .is_ok());
        }
    }

    #[test]
    fn strong_soundness_exhaustive_on_triangle_with_tags() {
        // Exhaustive over the *degree-one* side of the alphabet (5 letters
        // x 2 tags + garbage = manageable) on C3.
        let two_col = KCol::new(2);
        let mut alphabet = Vec::new();
        for payload in crate::degree_one::adversary_alphabet() {
            alphabet.push(tag_certificate(TAG_DEGREE_ONE, &payload));
        }
        alphabet.push(Certificate::from_byte(7));
        let c3 = Instance::canonical(generators::cycle(3));
        assert!(strong::check_strong_exhaustive(&UnionDecoder, &two_col, &c3, &alphabet).is_ok());
    }

    #[test]
    fn accepts_each_component_under_its_own_scheme() {
        let inst = mixed_instance();
        let labeling = UnionProver.certify(&inst).unwrap();
        let li = inst.with_labeling(labeling);
        assert!(accepts_all(&UnionDecoder, &li));
        // The C6 component got the cycle tag; the caterpillar the
        // degree-one tag.
        let caterpillar_node = 0;
        let cycle_node = 6; // first node of the C6 component
        assert_eq!(
            li.labeling().label(caterpillar_node).bytes()[0],
            TAG_DEGREE_ONE
        );
        assert_eq!(li.labeling().label(cycle_node).bytes()[0], TAG_EVEN_CYCLE);
    }
}
