//! Structured malicious provers shared by the soundness experiments.
//!
//! Honest certificates are locally plausible by construction, so the most
//! dangerous forgeries are *small perturbations of honest proofs* rather
//! than random noise. These helpers derive such perturbations from any
//! prover.

use hiding_lcp_core::instance::Instance;
use hiding_lcp_core::label::{Certificate, Labeling};
use hiding_lcp_core::prover::Prover;
use rand::Rng;

/// All single-node substitutions of `base` with letters from `alphabet`:
/// `n · |alphabet|` labelings.
pub fn single_flips(base: &Labeling, alphabet: &[Certificate]) -> Vec<Labeling> {
    let mut out = Vec::with_capacity(base.node_count() * alphabet.len());
    for v in 0..base.node_count() {
        for letter in alphabet {
            let mut l = base.clone();
            l.set(v, letter.clone());
            out.push(l);
        }
    }
    out
}

/// All transpositions of two nodes' certificates in `base`:
/// `n(n−1)/2` labelings.
pub fn swaps(base: &Labeling) -> Vec<Labeling> {
    let n = base.node_count();
    let mut out = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            let mut l = base.clone();
            let (a, b) = (base.label(u).clone(), base.label(v).clone());
            l.set(u, b);
            l.set(v, a);
            out.push(l);
        }
    }
    out
}

/// Single-bit flips: every one-bit perturbation of every certificate in
/// `base` — `Σ_v bit_len(cert_v)` labelings. The at-rest twin of the
/// in-flight corruption the fault injector
/// (`hiding-lcp-core::network::faults`) applies to certificates on the
/// wire, probing whether decoders validate certificate *contents* rather
/// than just their shape.
pub fn bit_flips(base: &Labeling) -> Vec<Labeling> {
    let mut out = Vec::new();
    for v in 0..base.node_count() {
        let bytes = base.label(v).bytes();
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.to_vec();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let mut l = base.clone();
            l.set(v, Certificate::from_bytes(flipped));
            out.push(l);
        }
    }
    out
}

/// Truncations: every prefix-shortened variant of each certificate (byte
/// granularity), probing format validation.
pub fn truncations(base: &Labeling) -> Vec<Labeling> {
    let mut out = Vec::new();
    for v in 0..base.node_count() {
        let bytes = base.label(v).bytes();
        for cut in 0..bytes.len() {
            let mut l = base.clone();
            l.set(v, Certificate::from_bytes(bytes[..cut].to_vec()));
            out.push(l);
        }
    }
    out
}

/// The full structured battery derived from a prover's honest labeling on
/// a *different* (donor) instance grafted onto `target` — labels that are
/// internally consistent but tell the story of another graph. Falls back
/// to flips/swaps/truncations of any honest labeling of `target` itself
/// when available.
pub fn battery<P: Prover + ?Sized>(
    prover: &P,
    target: &Instance,
    donors: &[Instance],
    alphabet: &[Certificate],
) -> Vec<Labeling> {
    let n = target.graph().node_count();
    let mut out = Vec::new();
    if let Some(honest) = prover.certify(target) {
        out.extend(single_flips(&honest, alphabet));
        out.extend(swaps(&honest));
        out.extend(truncations(&honest));
        out.extend(bit_flips(&honest));
        out.push(honest);
    }
    for donor in donors {
        if let Some(labels) = prover.certify(donor) {
            let m = labels.node_count();
            if m == 0 {
                continue;
            }
            // Graft by index modulo the donor size.
            out.push((0..n).map(|v| labels.label(v % m).clone()).collect());
        }
    }
    out
}

/// `count` random labelings over `alphabet` (thin wrapper kept here so
/// experiment code has a single adversary entry point).
pub fn random_batch<R: Rng + ?Sized>(
    n: usize,
    alphabet: &[Certificate],
    count: usize,
    rng: &mut R,
) -> Vec<Labeling> {
    (0..count)
        .map(|_| hiding_lcp_core::prover::random_labeling(n, alphabet, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree_one::{adversary_alphabet, DegreeOneProver};
    use hiding_lcp_core::language::KCol;
    use hiding_lcp_core::properties::strong;
    use hiding_lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flip_and_swap_counts() {
        let base = Labeling::uniform(4, Certificate::from_byte(0));
        assert_eq!(single_flips(&base, &adversary_alphabet()).len(), 20);
        assert_eq!(swaps(&base).len(), 6);
        assert_eq!(truncations(&base).len(), 4, "one byte per certificate");
        assert_eq!(bit_flips(&base).len(), 32, "8 bits per 1-byte certificate");
    }

    #[test]
    fn bit_flips_differ_from_base_in_one_bit() {
        let base = Labeling::uniform(3, Certificate::from_byte(0b1010_0101));
        for l in bit_flips(&base) {
            let differing: usize = (0..3)
                .map(|v| {
                    let a = base.label(v).bytes();
                    let b = l.label(v).bytes();
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| (x ^ y).count_ones() as usize)
                        .sum::<usize>()
                })
                .sum();
            assert_eq!(differing, 1, "exactly one bit flipped across the labeling");
        }
    }

    #[test]
    fn battery_survives_strong_soundness_of_degree_one() {
        // The Lemma 4.1 decoder withstands the full structured battery on
        // a pendant odd cycle.
        let two_col = KCol::new(2);
        let target = Instance::canonical(generators::pendant_path(5, 1));
        let donors = vec![
            Instance::canonical(generators::path(7)),
            Instance::canonical(generators::star(5)),
        ];
        let labelings = battery(&DegreeOneProver, &target, &donors, &adversary_alphabet());
        assert!(!labelings.is_empty());
        for labeling in &labelings {
            if labeling.node_count() != target.graph().node_count() {
                continue;
            }
            assert!(strong::strong_holds_for(
                &crate::degree_one::DegreeOneDecoder,
                &two_col,
                &target,
                labeling
            )
            .is_ok());
        }
    }

    #[test]
    fn random_batch_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let batch = random_batch(5, &adversary_alphabet(), 7, &mut rng);
        assert_eq!(batch.len(), 7);
        assert!(batch.iter().all(|l| l.node_count() == 5));
    }
}
