//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment is fully offline, so the real `proptest` cannot be
//! fetched. This crate implements the subset of its API the workspace's
//! test suites use: the [`proptest!`] macro, range strategies,
//! [`collection::vec`], `prop_assert*` macros and [`prelude::ProptestConfig`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim;
//!   re-running reproduces it because the per-test RNG seed is derived from
//!   the test name.
//! * **Deterministic.** Each test function draws its cases from a seed
//!   derived from the test's name, so failures are reproducible without a
//!   regression file (`.proptest-regressions` files are ignored).

pub use rand;

/// Strategy: a recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $u;
                let off = rand::Rng::random_range(rng, 0..span);
                self.start.wrapping_add(off as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi.wrapping_sub(lo) as $u;
                let off = rand::Rng::random_range(rng, 0..=span);
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_range_strategy_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Integer types accepted as collection lengths (mirrors the real crate's
/// `Into<SizeRange>` flexibility — untyped literals default to `i32`).
pub trait Length {
    /// The value as a `usize` length.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    fn to_len(self) -> usize;
}

macro_rules! impl_length {
    ($($t:ty),*) => {$(
        impl Length for $t {
            fn to_len(self) -> usize {
                usize::try_from(self).expect("collection length must be non-negative")
            }
        }
    )*};
}

impl_length!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Just`: always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut rand::rngs::StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Length, Strategy};

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, L: Strategy>(element: S, len: L) -> VecStrategy<S, L>
    where
        L::Value: Length,
    {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: Strategy> Strategy for VecStrategy<S, L>
    where
        L::Value: Length,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let n = self.len.sample(rng).to_len();
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-case failure carrier used by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything the `proptest!` body needs in scope.
pub mod prelude {
    pub use super::collection;
    pub use super::{Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Runner configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Stable 64-bit FNV-1a hash of the test name — the per-test RNG seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `proptest!` macro: runs each contained test function over many
/// sampled inputs. Supports the optional leading
/// `#![proptest_config(expr)]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::prelude::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prelude::ProptestConfig = $cfg;
                let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $arg.clone();)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            e,
                            vec![$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the inputs on
/// failure instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled values respect their ranges.
        #[test]
        fn ranges_hold(a in 0u64..100, b in 5usize..9) {
            prop_assert!(a < 100);
            prop_assert!((5..9).contains(&b));
        }

        /// Vec strategy honors length and element ranges.
        #[test]
        fn vecs_hold(v in collection::vec(2usize..6, 1..5usize)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (2..6).contains(&x)));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }

    #[test]
    fn prop_assert_failures_report() {
        fn inner() -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3, "math broke");
            Ok(())
        }
        assert!(inner().is_err());
    }
}
