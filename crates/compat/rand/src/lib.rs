//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace is fully offline, so the real
//! `rand` cannot be fetched. This crate re-implements the (small,
//! deterministic) subset of the 0.9 API the workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — a SplitMix64-seeded
//!   xoshiro256** generator (not the real StdRng's ChaCha12, but every use
//!   in this workspace is seeded and only relies on *determinism within one
//!   build*, never on cross-implementation stream equality);
//!
//! **Stream break.** Because the algorithm differs, every seeded random
//! stream differs from what `rand` 0.9 would produce: a seed that
//! reproduced a particular labeling, variant or erasure pattern under the
//! real crate reproduces a *different* one here (and vice versa). No
//! recorded results in this repository depend on a specific stream — the
//! committed artifacts (`BENCH_engine.json`, `EXPERIMENTS.md`) hold
//! timings and seed-independent verdicts only — but if seed-dependent
//! golden data is ever added, regenerate it when switching between this
//! shim and the real `rand`.
//! * [`Rng::random_range`] over integer `Range` / `RangeInclusive`,
//!   [`Rng::random_bool`];
//! * [`seq::SliceRandom::shuffle`], [`seq::IndexedRandom::choose`],
//!   [`seq::index::sample`].
//!
//! Ranges are sampled by rejection, so results are unbiased.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                sample_below(rng, (self.end - self.start) as u64) as $t + self.start
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                sample_below(rng, span + 1) as $t + lo
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Uniform draw from `0..bound` by rejection sampling (`bound > 0`).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the final partial block of the u64 space.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % bound;
        }
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits -> uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic for a fixed seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection from indexable sequences.
    pub trait IndexedRandom {
        /// The element type.
        type Output;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::Rng;

        /// The result of [`sample`]: distinct indices in `0..length`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// `amount` distinct indices sampled uniformly from `0..length`,
        /// via a partial Fisher–Yates pass.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let seq_a: Vec<u64> = (0..16).map(|_| a.random_range(0..u64::MAX)).collect();
        let seq_c: Vec<u64> = (0..16).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=5u64);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn range_samples_cover_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let idx: Vec<usize> = sample(&mut rng, 10, 4).into_iter().collect();
        assert_eq!(idx.len(), 4);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "indices distinct");
        assert!(idx.iter().all(|&i| i < 10));
    }
}
