//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment is fully offline, so the real `criterion` cannot be
//! fetched. This crate implements the subset of its API the workspace's
//! benches use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by simple
//! wall-clock timing (`std::time::Instant`).
//!
//! Reported statistics are a median over `sample_size` samples, each sample
//! averaging enough iterations to exceed a minimum measurable duration. No
//! HTML reports, no outlier analysis: results print to stdout as
//! `bench <name> ... median <t> (<samples> samples)`.

use std::time::{Duration, Instant};

/// Re-implementation of `criterion::black_box` (also re-exported at the
/// crate root by the real criterion).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per setup regardless of variant; the variants exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Passed to the closure given to `bench_function`; drives the measurement.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations (one median entry per sample).
    measured: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations reach ~1ms?
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.measured.push(start.elapsed() / iters as u32);
        }
    }

    /// Measures `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.measured.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.measured.is_empty() {
            return Duration::ZERO;
        }
        self.measured.sort_unstable();
        self.measured[self.measured.len() / 2]
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        f(&mut bencher);
        let median = bencher.median();
        let full = format!("{}/{}", self.name, id);
        println!(
            "bench {full:<48} median {median:>12?} ({} samples)",
            bencher.measured.len()
        );
        self.criterion
            .results
            .push(BenchResult { name: full, median });
        self
    }

    /// Measures several routines with round-robin interleaved samples:
    /// sample `i` of every routine is taken before sample `i + 1` of any.
    ///
    /// [`bench_function`](Self::bench_function) measures each benchmark's
    /// samples back to back, so on hosts whose effective speed drifts
    /// under sustained load (frequency scaling, virtualized steal time)
    /// the drift is charged to whichever benchmark happens to run later.
    /// Interleaving spreads it evenly, keeping medians comparable *within*
    /// the set — use this when the point of the group is a ratio between
    /// its members. (Shim extension; the real criterion has no equivalent,
    /// so gate usage on the shim.)
    pub fn bench_interleaved<'a>(
        &mut self,
        mut routines: Vec<(String, Box<dyn FnMut() + 'a>)>,
    ) -> &mut Self {
        if routines.is_empty() {
            return self;
        }
        // Calibrate each routine separately, as `Bencher::iter` does.
        let iters: Vec<u64> = routines
            .iter_mut()
            .map(|(_, f)| {
                let mut iters = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        f();
                    }
                    if start.elapsed() >= Duration::from_millis(1) || iters >= 1 << 20 {
                        break;
                    }
                    iters *= 2;
                }
                iters
            })
            .collect();
        let mut measured: Vec<Vec<Duration>> = vec![Vec::new(); routines.len()];
        for _ in 0..self.sample_size {
            for (j, (_, f)) in routines.iter_mut().enumerate() {
                let start = Instant::now();
                for _ in 0..iters[j] {
                    f();
                }
                measured[j].push(start.elapsed() / iters[j] as u32);
            }
        }
        for ((id, _), mut samples) in routines.into_iter().zip(measured) {
            samples.sort_unstable();
            let median = samples[samples.len() / 2];
            let full = format!("{}/{}", self.name, id);
            println!(
                "bench {full:<48} median {median:>12?} ({} samples)",
                samples.len()
            );
            self.criterion
                .results
                .push(BenchResult { name: full, median });
        }
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(&mut self) {}
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub name: String,
    /// Median measured duration.
    pub median: Duration,
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// All results recorded so far (readable by harness `main`s that want
    /// to post-process, e.g. to emit JSON).
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// A harness with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark (default sample size).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].name, "shim/noop");
    }

    #[test]
    fn bench_interleaved_records_all_routines_in_order() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).bench_interleaved(vec![
            ("a".into(), Box::new(|| drop(std::hint::black_box(1 + 1)))),
            ("b".into(), Box::new(|| drop(std::hint::black_box(2 + 2)))),
        ]);
        g.finish();
        assert_eq!(
            c.results
                .iter()
                .map(|r| r.name.as_str())
                .collect::<Vec<_>>(),
            ["shim/a", "shim/b"]
        );
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::new();
        let mut count = 0;
        let mut g = c.benchmark_group("shim");
        g.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    count += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(count, 4);
    }
}
