//! The paper-results matrix: every numbered result of the source paper
//! ("Strong and Hiding Distributed Certification of k-Coloring") mapped
//! to the test functions that witness it in this repo.
//!
//! The matrix is enforced, not aspirational: each entry names a file and
//! the witnessing `fn`s, and this suite fails on any dead entry — a
//! missing file, a renamed function, or a result id with no witnesses.
//! README.md carries the human-readable mirror of the same table, also
//! checked here so the two cannot drift apart.

use std::path::Path;

/// One paper result and its witnesses.
struct Entry {
    /// Result id as the paper numbers it.
    id: &'static str,
    /// What the result states, abbreviated.
    statement: &'static str,
    /// Repo-relative file holding the witnesses.
    file: &'static str,
    /// Test functions in `file` that exercise the result.
    witnesses: &'static [&'static str],
}

/// Every numbered result the roadmap commits to covering.
const REQUIRED: &[&str] = &[
    "T1.1", "T1.2", "T1.3", "T1.4", "T1.5", "L2.1", "L3.1", "L3.2", "L4.1", "L4.2", "L5.1", "L5.2",
    "L5.3", "L5.4", "L5.5", "L6.1", "L6.2", "L7.1",
];

const MATRIX: &[Entry] = &[
    Entry {
        id: "T1.1",
        statement: "strong+hiding LCPs for 2-col with O(1) certificates",
        file: "tests/theorem_1_1.rs",
        witnesses: &[
            "degree_one_full_dossier",
            "even_cycle_full_dossier",
            "union_full_dossier",
        ],
    },
    Entry {
        id: "T1.2",
        statement: "port-numbering lower bound via the pair encoding",
        file: "crates/core/src/lower.rs",
        witnesses: &[
            "pair_encoding_covers_exactly_the_mod_four_cycles",
            "cycle_search_on_c4_and_c6_needs_ports",
        ],
    },
    Entry {
        id: "T1.3",
        statement: "shatter LCP: strong+hiding for k-col, larger certificates",
        file: "tests/theorems_1_3_1_4.rs",
        witnesses: &["shatter_full_dossier"],
    },
    Entry {
        id: "T1.4",
        statement: "watermelon LCP: smaller certificates on bounded degree",
        file: "tests/theorems_1_3_1_4.rs",
        witnesses: &["watermelon_full_dossier"],
    },
    Entry {
        id: "T1.5",
        statement: "upper-bound LCPs resist adversarial refutation",
        file: "tests/theorem_1_5_refutation.rs",
        witnesses: &[
            "upper_bound_lcps_cannot_be_refuted",
            "edge3_is_refuted_adversarially",
        ],
    },
    Entry {
        id: "L2.1",
        statement: "forgetful classes have bounded diameter",
        file: "crates/graph/src/classes/forgetful.rs",
        witnesses: &["lemma_2_1_diameter_bound"],
    },
    Entry {
        id: "L3.1",
        statement: "the accepting neighborhood graph V(D, n)",
        file: "crates/core/src/nbhd/mod.rs",
        witnesses: &[
            "revealing_lcp_has_bipartite_nbhd",
            "identical_adjacent_views_form_self_loops",
        ],
    },
    Entry {
        id: "L3.2",
        statement: "hiding ⟺ V(D, n) not k-colorable",
        file: "tests/lemma_3_2_extraction.rs",
        witnesses: &[
            "revealing_baseline_is_extractable",
            "hiding_lcps_admit_no_extractor",
        ],
    },
    Entry {
        id: "L4.1",
        statement: "the degree-one LCP is complete, sound, strong, hiding",
        file: "tests/theorem_1_1.rs",
        witnesses: &["degree_one_full_dossier"],
    },
    Entry {
        id: "L4.2",
        statement: "the even-cycle LCP is complete, sound, strong, hiding",
        file: "tests/theorem_1_1.rs",
        witnesses: &["even_cycle_full_dossier"],
    },
    Entry {
        id: "L5.1",
        statement: "G_bad plans realize on a single instance",
        file: "crates/core/src/realize/gbad.rs",
        witnesses: &["single_instance_roundtrip"],
    },
    Entry {
        id: "L5.2",
        statement: "remapping preserves order and splits roles",
        file: "crates/core/src/realize/realizable.rs",
        witnesses: &["lemma_5_2_remapping_preserves_order_and_splits_roles"],
    },
    Entry {
        id: "L5.3",
        statement: "the pentagon cycle realizes G_bad",
        file: "tests/theorem_1_5_refutation.rs",
        witnesses: &["pentagon_cycle_realizes_g_bad"],
    },
    Entry {
        id: "L5.4",
        statement: "the expansion walk W_e through a far view",
        file: "crates/core/src/walks.rs",
        witnesses: &[
            "expansion_walk_on_torus",
            "expansion_walk_lifts_to_nbhd_and_is_non_backtracking",
        ],
    },
    Entry {
        id: "L5.5",
        statement: "odd-walk repair of a missing edge",
        file: "crates/core/src/walks.rs",
        witnesses: &[
            "repair_walk_goes_through_a_second_cycle",
            "repair_edge_lifts_the_lemma_5_5_walk",
        ],
    },
    Entry {
        id: "L6.1",
        statement: "finite Ramsey: monochromatic s-subsets exist",
        file: "crates/core/src/ramsey.rs",
        witnesses: &[
            "monochromatic_subsets_for_constant_colorings",
            "monochromatic_subset_parity_coloring",
        ],
    },
    Entry {
        id: "L6.2",
        statement: "good id sets make id-reading decoders order-invariant",
        file: "crates/core/src/ramsey.rs",
        witnesses: &[
            "find_good_id_set_pipeline",
            "isolated_node_padding_raises_the_id_budget",
        ],
    },
    Entry {
        id: "L7.1",
        statement: "shattered bipartiteness matches global bipartiteness",
        file: "crates/graph/src/classes/shatter.rs",
        witnesses: &["lemma_7_1_matches_global_bipartiteness"],
    },
];

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn every_required_result_has_a_live_witness() {
    let mut dead = Vec::new();
    for required in REQUIRED {
        let entries: Vec<&Entry> = MATRIX.iter().filter(|e| e.id == *required).collect();
        if entries.is_empty() {
            dead.push(format!("{required}: no matrix entry"));
            continue;
        }
        for entry in entries {
            let path = repo_root().join(entry.file);
            let Ok(source) = std::fs::read_to_string(&path) else {
                dead.push(format!("{}: missing file {}", entry.id, entry.file));
                continue;
            };
            assert!(
                !entry.witnesses.is_empty(),
                "{}: entry lists no witnesses",
                entry.id
            );
            for witness in entry.witnesses {
                if !source.contains(&format!("fn {witness}(")) {
                    dead.push(format!(
                        "{} ({}): `{witness}` not found in {}",
                        entry.id, entry.statement, entry.file
                    ));
                }
            }
        }
    }
    assert!(
        dead.is_empty(),
        "dead paper-matrix entries (stale file or renamed test):\n  {}",
        dead.join("\n  ")
    );
}

#[test]
fn matrix_lists_no_unknown_result_ids() {
    for entry in MATRIX {
        assert!(
            REQUIRED.contains(&entry.id),
            "matrix entry `{}` is not a required result id — update REQUIRED",
            entry.id
        );
    }
}

/// README.md mirrors this matrix; every result id must appear in its
/// table together with the witness file, so the human-readable copy
/// cannot silently drift from the enforced one.
#[test]
fn readme_mirrors_the_matrix() {
    let readme = std::fs::read_to_string(repo_root().join("README.md")).expect("README.md exists");
    for entry in MATRIX {
        assert!(
            readme.contains(entry.id),
            "README.md paper-results table is missing `{}`",
            entry.id
        );
        assert!(
            readme.contains(entry.file),
            "README.md row for `{}` should cite `{}`",
            entry.id,
            entry.file
        );
    }
}
