//! The general k-coloring side of the paper's title: the framework's
//! quantities (languages, revealing LCPs, neighborhood graphs, extraction,
//! the hiding spectrum) at k = 3.

use hiding_lcp::certs::revealing::{adversary_alphabet, RevealingDecoder, RevealingProver};
use hiding_lcp::core::decoder::accepts_all;
use hiding_lcp::core::extract::Extractor;
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::language::KCol;
use hiding_lcp::core::nbhd::{sources, NbhdGraph};
use hiding_lcp::core::properties::strong;
use hiding_lcp::core::prover::Prover;
use hiding_lcp::core::view::IdMode;
use hiding_lcp::graph::algo::coloring;
use hiding_lcp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn three_col_revealing_dossier() {
    let three_col = KCol::new(3);
    let decoder = RevealingDecoder::new(3);
    let prover = RevealingProver::new(3);
    // Completeness on 3-chromatic graphs.
    for g in [
        generators::petersen(),
        generators::cycle(5),
        generators::cycle(7),
        generators::watermelon(&[2, 3]),
        generators::grid(3, 3),
    ] {
        let inst = Instance::canonical(g);
        let labeling = prover.certify(&inst).expect("3-colorable");
        assert!(accepts_all(&decoder, &inst.with_labeling(labeling)));
    }
    // Declines on K4 (chromatic number 4).
    assert!(prover
        .certify(&Instance::canonical(generators::complete(4)))
        .is_none());
    // Strong soundness w.r.t. 3-col: the accepting set induces a
    // 3-colorable subgraph, exhaustively on K4 and K5.
    let alphabet = adversary_alphabet(3);
    for g in [generators::complete(4), generators::complete(5)] {
        let inst = Instance::canonical(g);
        strong::check_strong_exhaustive(&decoder, &three_col, &inst, &alphabet)
            .expect("3-col strong soundness");
    }
}

#[test]
fn three_col_neighborhood_graph_and_extraction() {
    // Exhaustive universe at n <= 3 over the 3-color alphabet (plus the
    // out-of-range letter), yes-filter = 3-colorable.
    let alphabet = adversary_alphabet(2); // bytes {0,1,2}: exactly 3 colors
    let universe = sources::exhaustive_universe(3, &alphabet);
    let decoder = RevealingDecoder::new(3);
    let nbhd = NbhdGraph::build(&decoder, IdMode::Anonymous, universe, |g| {
        coloring::is_k_colorable(g, 3)
    });
    assert!(nbhd.view_count() > 0);
    // Lemma 3.2 at k = 3: the revealing LCP is not hiding.
    assert!(nbhd.k_colorable(3));
    let chi = nbhd.chromatic_number().expect("no self-loops");
    assert!(chi <= 3, "revealing certificates color the view graph");
    let extractor = Extractor::from_nbhd(nbhd, 3).expect("3-colorable");
    // Extraction succeeds on accepted 3-colored instances within the
    // universe's reach (triangles and paths).
    let three_col = KCol::new(3);
    let mut rng = StdRng::seed_from_u64(5);
    for g in [generators::cycle(3), generators::path(3)] {
        let inst = Instance::random(g, &mut rng);
        let labeling = RevealingProver::new(3).certify(&inst).unwrap();
        let li = inst.with_labeling(labeling);
        let outputs = extractor.extract_all(&li);
        assert!(three_col.is_extracted_witness(li.graph(), &outputs));
    }
}

/// The paper's "incidentally" remark after Theorem 1.2, mechanized: a
/// neighborhood graph that is not K-colorable is in particular not
/// k-colorable for k ≤ K, so hiding a K-coloring implies hiding a
/// k-coloring. Checked on the even-cycle scheme whose V has a self-loop
/// (non-K-colorable for every K).
#[test]
fn hiding_is_monotone_downward_in_k() {
    let nbhd = hiding_lcp_bench::even_cycle_nbhd();
    for k in 2..=6usize {
        assert!(
            !nbhd.k_colorable(k),
            "a self-loop defeats every palette, k = {k}"
        );
        assert!(Extractor::from_nbhd(nbhd.clone(), k).is_none());
    }
    // And on the degree-one scheme: not 2-colorable but 3-colorable, so
    // it hides a 2-coloring yet leaks a 3-coloring — the gap the paper's
    // separation program must close.
    let nbhd = hiding_lcp_bench::degree_one_nbhd();
    assert!(!nbhd.k_colorable(2));
    assert!(nbhd.k_colorable(3));
    assert!(Extractor::from_nbhd(nbhd, 3).is_some());
}

#[test]
fn kcol_language_basics_at_higher_k() {
    let four_col = KCol::new(4);
    assert!(four_col.is_yes_graph(&generators::complete(4)));
    assert!(!four_col.is_yes_graph(&generators::complete(5)));
    assert!(four_col.is_witness(&generators::complete(4), &[0, 1, 2, 3]));
    assert!(!four_col.is_witness(&generators::complete(4), &[0, 1, 2, 2]));
    // Chromatic numbers line up with the language.
    for (g, chi) in [
        (generators::petersen(), 3usize),
        (generators::complete(6), 6),
        (generators::cycle(9), 3),
        (generators::grid(4, 4), 2),
    ] {
        assert_eq!(coloring::chromatic_number(&g), chi);
        assert!(KCol::new(chi).is_yes_graph(&g));
        if chi > 1 {
            assert!(!KCol::new(chi - 1).is_yes_graph(&g));
        }
    }
}
