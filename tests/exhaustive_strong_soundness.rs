//! Exhaustive strong-soundness sweeps on the triangle (the smallest
//! no-instance) for every LCP, over focused-but-complete certificate
//! alphabets. A sweep of this kind concretely caught the far-port
//! transcription gap in the watermelon decoder (see
//! `certs/src/watermelon.rs`), so these are kept deliberately exhaustive
//! rather than randomized.

use hiding_lcp::certs::{degree_one, even_cycle, revealing, shatter, union, watermelon};
use hiding_lcp::core::decoder::Decoder;
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::label::Certificate;
use hiding_lcp::core::language::KCol;
use hiding_lcp::core::properties::strong;
use hiding_lcp::graph::generators;

fn triangle() -> Instance {
    Instance::canonical(generators::cycle(3))
}

fn sweep<D: Decoder>(decoder: &D, alphabet: &[Certificate]) -> usize {
    let two_col = KCol::new(2);
    let inst = triangle();
    strong::check_strong_exhaustive(decoder, &two_col, &inst, alphabet)
        .unwrap_or_else(|v| panic!("{}: violated by {:?}", decoder.name(), v.labeling))
}

#[test]
fn revealing_exhaustive_on_triangle() {
    let checked = sweep(
        &revealing::RevealingDecoder::new(2),
        &revealing::adversary_alphabet(2),
    );
    assert_eq!(checked, 27);
}

#[test]
fn degree_one_exhaustive_on_triangle() {
    let checked = sweep(
        &degree_one::DegreeOneDecoder,
        &degree_one::adversary_alphabet(),
    );
    assert_eq!(checked, 125);
}

#[test]
fn even_cycle_exhaustive_on_triangle() {
    let checked = sweep(
        &even_cycle::EvenCycleDecoder,
        &even_cycle::adversary_alphabet(),
    );
    assert_eq!(checked, 17usize.pow(3));
}

#[test]
fn union_exhaustive_on_triangle() {
    // The full union alphabet is large; sweep the degree-one half and the
    // even-cycle half separately (cross-tag edges reject at both ends, so
    // mixed-tag labelings only shrink the accepting set further — the
    // interesting adversaries are single-tag).
    let mut a = Vec::new();
    for payload in degree_one::adversary_alphabet() {
        a.push(union::tag_certificate(union::TAG_DEGREE_ONE, &payload));
    }
    a.push(Certificate::from_byte(9));
    let checked = sweep(&union::UnionDecoder, &a);
    assert_eq!(checked, 216);
    let mut b = Vec::new();
    for payload in even_cycle::adversary_alphabet() {
        b.push(union::tag_certificate(union::TAG_EVEN_CYCLE, &payload));
    }
    let checked = sweep(&union::UnionDecoder, &b);
    assert_eq!(checked, 17usize.pow(3));
}

/// Every well-formed shatter certificate a triangle adversary could use:
/// points/neighborhoods/components over the triangle's own identifiers
/// (plus one foreign identifier), all component numbers in 0..3, both
/// colors, color vectors up to length 2.
#[test]
fn shatter_exhaustive_on_triangle() {
    let inst = triangle();
    let width = shatter::id_width(inst.ids().bound());
    let mut alphabet = Vec::new();
    let ids: Vec<u64> = (1..=4).collect(); // 3 real ids + 1 foreign
    for &id in &ids {
        alphabet.push(shatter::ShatterLabel::Point { id }.encode(width));
        for colors in [
            vec![0],
            vec![1],
            vec![0, 0],
            vec![0, 1],
            vec![1, 0],
            vec![1, 1],
        ] {
            alphabet.push(shatter::ShatterLabel::Neighborhood { id, colors }.encode(width));
        }
        for component in 0..2u8 {
            for color in 0..=1u8 {
                alphabet.push(
                    shatter::ShatterLabel::Component {
                        id,
                        component,
                        color,
                    }
                    .encode(width),
                );
            }
        }
    }
    alphabet.push(Certificate::from_byte(7));
    // 4 * (1 + 6 + 4) + 1 = 45 letters -> 45^3 = 91125 labelings.
    let checked = sweep(&shatter::ShatterDecoder, &alphabet);
    assert_eq!(checked, 45usize.pow(3));
}

/// Every well-formed watermelon certificate over the triangle's ids: both
/// endpoint-pair orderings, path numbers 0/1, all far-port pairs in
/// {1, 2}², both color polarities.
#[test]
fn watermelon_exhaustive_on_triangle() {
    let inst = triangle();
    let width = shatter::id_width(inst.ids().bound());
    let mut alphabet = Vec::new();
    let pairs = [(1u64, 2u64), (1, 3), (2, 3)];
    for &(id1, id2) in &pairs {
        alphabet.push(watermelon::MelonLabel::Endpoint { id1, id2 }.encode(width));
        for path in 0..2u16 {
            for p1 in 1..=2u8 {
                for p2 in 1..=2u8 {
                    for c1 in 0..=1u8 {
                        alphabet.push(
                            watermelon::MelonLabel::PathNode {
                                id1,
                                id2,
                                path,
                                edges: [(p1, c1), (p2, 1 - c1)],
                            }
                            .encode(width),
                        );
                    }
                }
            }
        }
    }
    alphabet.push(Certificate::from_byte(7));
    // 3 * (1 + 16) + 1 = 52 letters -> 52^3 = 140608 labelings.
    let checked = sweep(&watermelon::WatermelonDecoder, &alphabet);
    assert_eq!(checked, 52usize.pow(3));
}

/// The same watermelon sweep on C5 with a reduced alphabet — odd cycles
/// longer than the triangle stress the path-consistency rules instead of
/// the endpoint rules.
#[test]
fn watermelon_exhaustive_on_c5_reduced() {
    let inst = Instance::canonical(generators::cycle(5));
    let width = shatter::id_width(inst.ids().bound());
    let mut alphabet = Vec::new();
    let (id1, id2) = (1u64, 3u64);
    alphabet.push(watermelon::MelonLabel::Endpoint { id1, id2 }.encode(width));
    for p1 in 1..=2u8 {
        for p2 in 1..=2u8 {
            for c1 in 0..=1u8 {
                alphabet.push(
                    watermelon::MelonLabel::PathNode {
                        id1,
                        id2,
                        path: 0,
                        edges: [(p1, c1), (p2, 1 - c1)],
                    }
                    .encode(width),
                );
            }
        }
    }
    // 9 letters -> 9^5 = 59049 labelings.
    let two_col = KCol::new(2);
    let checked =
        strong::check_strong_exhaustive(&watermelon::WatermelonDecoder, &two_col, &inst, &alphabet)
            .expect("strongly sound on C5");
    assert_eq!(checked, 9usize.pow(5));
}

/// Degree-one on the 5-cycle — the smallest odd cycle where a hidden
/// pocket could try to straddle two nodes.
#[test]
fn degree_one_exhaustive_on_c5() {
    let two_col = KCol::new(2);
    let inst = Instance::canonical(generators::cycle(5));
    let checked = strong::check_strong_exhaustive(
        &degree_one::DegreeOneDecoder,
        &two_col,
        &inst,
        &degree_one::adversary_alphabet(),
    )
    .expect("strongly sound on C5");
    assert_eq!(checked, 5usize.pow(5));
}

/// The paper's observation in Section 2.3, mechanized: strong soundness
/// implies plain soundness. For every LCP, the same triangle sweeps that
/// establish the strong property also pass the plain soundness checker
/// (no labeling is unanimously accepted on a no-instance).
#[test]
fn strong_implies_plain_soundness_on_the_triangle() {
    use hiding_lcp::core::properties::soundness;
    let inst = triangle();
    let checked = soundness::check_soundness_exhaustive(
        &degree_one::DegreeOneDecoder,
        &inst,
        &degree_one::adversary_alphabet(),
    )
    .expect("sound");
    assert_eq!(checked, 125);
    let checked = soundness::check_soundness_exhaustive(
        &even_cycle::EvenCycleDecoder,
        &inst,
        &even_cycle::adversary_alphabet(),
    )
    .expect("sound");
    assert_eq!(checked, 17usize.pow(3));
    let checked = soundness::check_soundness_exhaustive(
        &revealing::RevealingDecoder::new(2),
        &inst,
        &revealing::adversary_alphabet(2),
    )
    .expect("sound");
    assert_eq!(checked, 27);
}

/// Order-invariant extractor classes: over the order-enumerated Lemma 3.1
/// universe at n <= 3, the revealing LCP's OrderOnly neighborhood graph is
/// still 2-colorable (not hiding from order-invariant decoders either).
#[test]
fn revealing_not_hiding_from_order_invariant_extractors() {
    use hiding_lcp::core::nbhd::{sources, NbhdGraph};
    use hiding_lcp::graph::algo::bipartite;
    let alphabet = revealing::adversary_alphabet(1);
    let universe = sources::exhaustive_universe_ordered(3, &alphabet);
    let nbhd = NbhdGraph::build(
        &revealing::RevealingDecoder::new(2),
        hiding_lcp::core::view::IdMode::OrderOnly,
        universe,
        bipartite::is_bipartite,
    );
    assert!(nbhd.view_count() > 0);
    assert!(nbhd.k_colorable(2));
    assert!(
        hiding_lcp::core::extract::Extractor::from_nbhd(nbhd, 2).is_some(),
        "an order-invariant extractor exists"
    );
}
