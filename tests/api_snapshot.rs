//! Public-API snapshot: the blessed surface as a curated symbol list,
//! pinned against `tests/api_snapshot.txt`.
//!
//! Two failure modes, two guards:
//!
//! * a blessed symbol disappears or moves — the `exists` re-imports below
//!   stop compiling;
//! * the curated list itself changes (a symbol is added, dropped or
//!   renamed) — the runtime comparison against the committed snapshot
//!   fails, so widening or narrowing the surface requires a deliberate
//!   edit of `tests/api_snapshot.txt` in the same change.
//!
//! The list is curated, not generated: it is the surface new code is
//! expected to build against — `hiding_lcp::prelude` plus the
//! fragment/shard machinery the `audit` coordinator and external harnesses
//! use. Everything else re-exported from `core`/`graph`/`certs` is public
//! but not pinned here.

macro_rules! blessed_surface {
    ($($path:path),+ $(,)?) => {
        #[allow(unused_imports)]
        mod exists {
            $(pub use $path;)+
        }
        const SURFACE: &[&str] = &[$(stringify!($path)),+];
    };
}

blessed_surface![
    // One-import everyday surface.
    hiding_lcp::prelude::AuditPlan,
    hiding_lcp::prelude::AuditReport,
    hiding_lcp::prelude::Certificate,
    hiding_lcp::prelude::Coverage,
    hiding_lcp::prelude::Decoder,
    hiding_lcp::prelude::ExecMode,
    hiding_lcp::prelude::IdMode,
    hiding_lcp::prelude::Instance,
    hiding_lcp::prelude::KCol,
    hiding_lcp::prelude::LabeledInstance,
    hiding_lcp::prelude::Labeling,
    hiding_lcp::prelude::LazySweep,
    hiding_lcp::prelude::MetricsRecorder,
    hiding_lcp::prelude::MetricsSnapshot,
    hiding_lcp::prelude::NbhdGraph,
    hiding_lcp::prelude::PropertyCheck,
    hiding_lcp::prelude::Prover,
    hiding_lcp::prelude::ShardSpec,
    hiding_lcp::prelude::SweepBudget,
    hiding_lcp::prelude::SweepError,
    hiding_lcp::prelude::SweepOpts,
    hiding_lcp::prelude::SweepRecorder,
    hiding_lcp::prelude::SweepSession,
    hiding_lcp::prelude::SweepStrategy,
    hiding_lcp::prelude::Universe,
    hiding_lcp::prelude::VerificationReport,
    hiding_lcp::prelude::Verdict,
    hiding_lcp::prelude::View,
    hiding_lcp::prelude::run,
    // Resume, fragment and shard machinery for external coordinators.
    hiding_lcp::core::verify::MemberFrontier,
    hiding_lcp::core::verify::PanelFragment,
    hiding_lcp::core::verify::PanelResumeToken,
    hiding_lcp::core::verify::ResumeToken,
    hiding_lcp::core::verify::ShardRunReport,
    hiding_lcp::core::verify::SweepFragment,
    hiding_lcp::core::verify::merge_fragments,
    hiding_lcp::core::verify::merge_panel_fragments,
    hiding_lcp::core::verify::run_shards,
    hiding_lcp::core::verify::sum_stable_counters,
    hiding_lcp::core::verify::plan::STABLE_COUNTER_ALLOWLIST,
];

/// `stringify!` spacing around `::` differs across toolchains; strip all
/// whitespace so the snapshot is toolchain-independent.
fn normalize(symbol: &str) -> String {
    symbol.split_whitespace().collect()
}

#[test]
fn public_api_matches_committed_snapshot() {
    let actual: Vec<String> = SURFACE.iter().map(|s| normalize(s)).collect();
    let expected: Vec<String> = include_str!("api_snapshot.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(normalize)
        .collect();

    if actual != expected {
        let added: Vec<_> = actual.iter().filter(|s| !expected.contains(s)).collect();
        let removed: Vec<_> = expected.iter().filter(|s| !actual.contains(s)).collect();
        panic!(
            "public API surface drifted from tests/api_snapshot.txt\n\
             added (in code, not in snapshot):   {added:#?}\n\
             removed (in snapshot, not in code): {removed:#?}\n\
             If the change is intentional, update tests/api_snapshot.txt to match."
        );
    }
}

#[test]
fn snapshot_is_sorted_and_duplicate_free() {
    // Within each group the list stays alphabetical so diffs are stable;
    // duplicates would let a drifted symbol hide behind its twin.
    let mut seen = std::collections::BTreeSet::new();
    for symbol in SURFACE {
        assert!(
            seen.insert(normalize(symbol)),
            "duplicate symbol in curated surface: {symbol}"
        );
    }
}
