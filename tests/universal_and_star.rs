//! Two Section 1.1 observations, end to end:
//!
//! * the **universal LCP** (adjacency-matrix certificates) certifies
//!   2-colorability with O(n²) bits and is maximally non-hiding — every
//!   node can extract its color;
//! * **promise classes can forbid hiding outright**: on star graphs, the
//!   degree rule (degree 1 ⇒ color 1, else color 0) extracts a proper
//!   2-coloring from *any* certificate assignment whatsoever, so no LCP
//!   for 2-col restricted to stars can be hiding.

use hiding_lcp::certs::universal::{UniversalDecoder, UniversalExtractor, UniversalProver};
use hiding_lcp::core::decoder::accepts_all;
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::language::KCol;
use hiding_lcp::core::prover::{random_labeling, Prover};
use hiding_lcp::core::view::IdMode;
use hiding_lcp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn universal_lcp_certifies_and_leaks_everywhere() {
    let two_col = KCol::new(2);
    let mut rng = StdRng::seed_from_u64(21);
    for g in [
        generators::cycle(10),
        generators::grid(3, 4),
        generators::random_bipartite_regular(5, 3, &mut rng),
        generators::balanced_tree(2, 3),
    ] {
        let inst = Instance::random(g, &mut rng);
        let labeling = UniversalProver.certify(&inst).expect("bipartite");
        let bits = labeling.max_bits();
        let n = inst.graph().node_count();
        // O(n²): the bitmap dominates.
        assert!(bits >= n * n, "bitmap grows quadratically");
        let li = inst.with_labeling(labeling);
        assert!(accepts_all(&UniversalDecoder, &li));
        // EVERY node extracts — zero hiding.
        let outputs = UniversalExtractor.extract_all(&li);
        assert!(outputs.iter().all(Option::is_some));
        assert!(two_col.is_extracted_witness(li.graph(), &outputs));
    }
}

/// The paper's star example: with the promise "the input is a star", the
/// degree rule outputs a proper 2-coloring no matter what certificates
/// say — the promise class itself reveals the witness, so hiding is
/// impossible for 2-col restricted to stars.
#[test]
fn star_promise_forbids_hiding() {
    let two_col = KCol::new(2);
    let mut rng = StdRng::seed_from_u64(23);
    let junk_alphabet = hiding_lcp::certs::degree_one::adversary_alphabet();
    for leaves in 2..8usize {
        let g = generators::star(leaves);
        for _ in 0..10 {
            let inst = Instance::random(g.clone(), &mut rng);
            // Arbitrary certificates — the extraction ignores them.
            let labeling = random_labeling(g.node_count(), &junk_alphabet, &mut rng);
            let li = inst.with_labeling(labeling);
            // The degree rule, as a 1-round view function.
            let outputs: Vec<Option<usize>> = li
                .graph()
                .nodes()
                .map(|v| {
                    let view = li.view(v, 1, IdMode::Anonymous);
                    Some(if view.center_degree() == 1 { 1 } else { 0 })
                })
                .collect();
            assert!(
                two_col.is_extracted_witness(li.graph(), &outputs),
                "the degree rule always extracts on stars (leaves = {leaves})"
            );
        }
    }
    // Sanity: the same rule fails outside the promise class.
    let inst = Instance::canonical(generators::path(4));
    let li = inst.with_labeling(hiding_lcp::core::label::Labeling::empty(4));
    let outputs: Vec<Option<usize>> = li
        .graph()
        .nodes()
        .map(|v| {
            let view = li.view(v, 1, IdMode::Anonymous);
            Some(if view.center_degree() == 1 { 1 } else { 0 })
        })
        .collect();
    assert!(
        !KCol::new(2).is_extracted_witness(li.graph(), &outputs),
        "P4's two middle nodes share color 0"
    );
}

/// The star with one leaf is K2 — both nodes have degree 1 and the rule
/// colors them both 1, which FAILS. The paper's rule implicitly assumes
/// stars with at least two leaves; check the boundary honestly.
#[test]
fn single_leaf_star_is_the_degenerate_case() {
    let g = generators::star(1);
    let inst = Instance::canonical(g);
    let li = inst.with_labeling(hiding_lcp::core::label::Labeling::empty(2));
    let outputs: Vec<Option<usize>> = li
        .graph()
        .nodes()
        .map(|v| {
            let view = li.view(v, 1, IdMode::Anonymous);
            Some(if view.center_degree() == 1 { 1 } else { 0 })
        })
        .collect();
    assert!(
        !KCol::new(2).is_extracted_witness(li.graph(), &outputs),
        "K2 defeats the bare degree rule"
    );
}
