//! End-to-end verification of Theorem 1.1: the degree-one (Lemma 4.1),
//! even-cycle (Lemma 4.2) and union LCPs are simultaneously complete,
//! strongly sound and hiding on their promise classes, anonymously, with
//! constant-size certificates.

use hiding_lcp::certs::{degree_one, even_cycle, union};
use hiding_lcp::core::decoder::Decoder;
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::label::Labeling;
use hiding_lcp::core::language::KCol;
use hiding_lcp::core::properties::{completeness, invariance, strong};
use hiding_lcp::core::prover::Prover;
use hiding_lcp::graph::generators;
use hiding_lcp_bench as workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn degree_one_full_dossier() {
    // Completeness across the promise class at several scales.
    let instances: Vec<Instance> = vec![
        Instance::canonical(generators::path(2)),
        Instance::canonical(generators::path(50)),
        Instance::canonical(generators::star(12)),
        Instance::canonical(generators::caterpillar(10, 3)),
        Instance::canonical(generators::balanced_tree(3, 3)),
        Instance::canonical(generators::pendant_path(8, 4)),
        Instance::canonical(generators::with_pendant(&generators::hypercube(3), 0).0),
    ];
    let report = completeness::check_completeness(
        &degree_one::DegreeOneDecoder,
        &degree_one::DegreeOneProver,
        instances,
    );
    assert!(report.all_passed(), "{:?}", report.failures);
    assert_eq!(report.max_certificate_bits, 8, "O(1) certificates");

    // Strong soundness: exhaustive on small no-instances and yes-instances.
    let two_col = KCol::new(2);
    let alphabet = degree_one::adversary_alphabet();
    for g in [
        generators::cycle(3),
        generators::pendant_path(3, 2),
        generators::path(5),
        generators::complete(4),
    ] {
        let inst = Instance::canonical(g);
        strong::check_strong_exhaustive(&degree_one::DegreeOneDecoder, &two_col, &inst, &alphabet)
            .expect("strongly sound");
    }

    // Hiding via Lemma 3.2 (odd closed walk in V(D, ·)).
    assert!(workloads::degree_one_nbhd().odd_cycle().is_some());

    // Anonymity: declared and observed.
    assert_eq!(
        degree_one::DegreeOneDecoder.id_mode(),
        hiding_lcp::core::view::IdMode::Anonymous
    );
    let inst = Instance::canonical(generators::path(6));
    let labeling = degree_one::DegreeOneProver.certify(&inst).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    invariance::check_anonymous(
        &degree_one::DegreeOneDecoder,
        &inst,
        &labeling,
        25,
        &mut rng,
    )
    .expect("anonymous by construction");
}

#[test]
fn even_cycle_full_dossier() {
    let mut rng = StdRng::seed_from_u64(2);
    let instances: Vec<Instance> = [4usize, 6, 8, 20, 100]
        .into_iter()
        .flat_map(|n| {
            vec![
                Instance::canonical(generators::cycle(n)),
                Instance::random(generators::cycle(n), &mut rng),
            ]
        })
        .collect();
    let report = completeness::check_completeness(
        &even_cycle::EvenCycleDecoder,
        &even_cycle::EvenCycleProver,
        instances,
    );
    assert!(report.all_passed(), "{:?}", report.failures);
    assert_eq!(report.max_certificate_bits, 48, "O(1) certificates");

    let two_col = KCol::new(2);
    let alphabet = even_cycle::adversary_alphabet();
    // Exhaustive on C3 (17^3 labelings); randomized on C5 and C7.
    let c3 = Instance::canonical(generators::cycle(3));
    strong::check_strong_exhaustive(&even_cycle::EvenCycleDecoder, &two_col, &c3, &alphabet)
        .expect("strongly sound on C3");
    for n in [5usize, 7] {
        let inst = Instance::canonical(generators::cycle(n));
        strong::check_strong_random(
            &even_cycle::EvenCycleDecoder,
            &two_col,
            &inst,
            &alphabet,
            3_000,
            &mut rng,
        )
        .expect("strongly sound");
    }

    assert!(workloads::even_cycle_nbhd().odd_cycle().is_some());
}

#[test]
fn union_full_dossier() {
    // The union LCP covers H1 ∪ H2 with one decoder.
    let mixed = generators::path(5)
        .disjoint_union(&generators::cycle(6))
        .disjoint_union(&generators::star(3))
        .disjoint_union(&generators::cycle(4));
    let instances = vec![
        Instance::canonical(mixed),
        Instance::canonical(generators::cycle(12)),
        Instance::canonical(generators::balanced_tree(2, 4)),
    ];
    let report =
        completeness::check_completeness(&union::UnionDecoder, &union::UnionProver, instances);
    assert!(report.all_passed(), "{:?}", report.failures);

    // Strong soundness survives a cross-tag adversary exhaustively on C3.
    let two_col = KCol::new(2);
    let mut small_alphabet = Vec::new();
    for payload in degree_one::adversary_alphabet().into_iter().take(4) {
        small_alphabet.push(union::tag_certificate(union::TAG_DEGREE_ONE, &payload));
        small_alphabet.push(union::tag_certificate(union::TAG_EVEN_CYCLE, &payload));
    }
    let c3 = Instance::canonical(generators::cycle(3));
    strong::check_strong_exhaustive(&union::UnionDecoder, &two_col, &c3, &small_alphabet)
        .expect("strongly sound");

    // The union decoder inherits hiding from both branches: feed it the
    // degree-one hiding universe with tagged labels.
    let g = generators::path(4);
    let mut universe = Vec::new();
    for ports in hiding_lcp::graph::ports::all_port_assignments(&g, 100) {
        let inst = Instance::new(
            g.clone(),
            ports,
            hiding_lcp::graph::IdAssignment::canonical(4),
        )
        .unwrap();
        for labeling in degree_one::accepting_labelings(&inst) {
            let tagged: Labeling = labeling
                .as_slice()
                .iter()
                .map(|c| union::tag_certificate(union::TAG_DEGREE_ONE, c))
                .collect();
            universe.push(inst.clone().with_labeling(tagged));
        }
    }
    let nbhd = hiding_lcp::core::nbhd::NbhdGraph::build(
        &union::UnionDecoder,
        hiding_lcp::core::view::IdMode::Anonymous,
        universe,
        |g| {
            hiding_lcp::graph::algo::bipartite::is_bipartite(g)
                && hiding_lcp::graph::classes::simple::is_theorem_1_1_instance(g)
        },
    );
    assert!(nbhd.odd_cycle().is_some(), "the union decoder hides");
}
