//! The Lemma 3.2 characterization, both directions, across crates:
//!
//! * the revealing baseline has a 2-colorable neighborhood graph over the
//!   exhaustive universe, so the extractor exists and recovers proper
//!   colorings on accepted yes-instances (not hiding);
//! * every hiding LCP of the paper has a non-2-colorable neighborhood
//!   graph over its witness universe, so no extractor exists.

use hiding_lcp::certs::{degree_one, revealing};
use hiding_lcp::core::decoder::accepts_all;
use hiding_lcp::core::extract::Extractor;
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::nbhd::{sources, NbhdGraph};
use hiding_lcp::core::properties::hiding::{check_hiding, HidingVerdict, UniverseCoverage};
use hiding_lcp::core::prover::Prover;
use hiding_lcp::core::view::IdMode;
use hiding_lcp::graph::algo::bipartite;
use hiding_lcp::graph::generators;
use hiding_lcp_bench as workloads;

#[test]
fn revealing_baseline_is_extractable() {
    let nbhd = workloads::revealing_nbhd(4);
    // Over an exhaustive universe, 2-colorability is conclusive.
    let verdict = check_hiding(&nbhd, 2, UniverseCoverage::Exhaustive);
    let HidingVerdict::NotHiding { coloring } = verdict else {
        panic!("the revealing LCP must not hide, got {verdict:?}");
    };
    assert_eq!(coloring.len(), nbhd.view_count());

    // The extractor recovers proper colorings on accepted instances of
    // various shapes — including ones larger than the universe bound,
    // because anonymous views recur.
    let extractor = Extractor::from_nbhd(nbhd, 2).expect("colorable");
    let prover = revealing::RevealingProver::new(2);
    for g in [
        generators::cycle(4),
        generators::cycle(10),
        generators::path(9),
        generators::star(3),
    ] {
        let inst = Instance::canonical(g);
        let labeling = prover.certify(&inst).expect("bipartite");
        let li = inst.with_labeling(labeling);
        assert!(accepts_all(&revealing::RevealingDecoder::new(2), &li));
        assert!(
            extractor.extraction_succeeds(&li),
            "the revealing LCP leaks a 2-coloring"
        );
    }
}

#[test]
fn hiding_lcps_admit_no_extractor() {
    for (name, nbhd) in [
        ("degree-one", workloads::degree_one_nbhd()),
        ("even-cycle", workloads::even_cycle_nbhd()),
        ("shatter", workloads::shatter_nbhd()),
        ("watermelon", workloads::watermelon_nbhd()),
    ] {
        let verdict = check_hiding(&nbhd, 2, UniverseCoverage::Partial);
        assert!(verdict.is_hiding(), "{name} must hide (odd closed walk)");
        assert!(
            Extractor::from_nbhd(nbhd, 2).is_none(),
            "{name}: no extractor can exist"
        );
    }
}

#[test]
fn hiding_is_conclusive_even_over_partial_universes() {
    // The odd closed walk for the degree-one LCP survives inside the
    // exhaustive universe too (a superset of the witness universe).
    let alphabet = vec![
        degree_one::Letter::Zero.encode(),
        degree_one::Letter::One.encode(),
        degree_one::Letter::Bot.encode(),
        degree_one::Letter::Top.encode(),
    ];
    let universe = sources::exhaustive_universe(4, &alphabet);
    let nbhd = NbhdGraph::build(
        &degree_one::DegreeOneDecoder,
        IdMode::Anonymous,
        universe,
        |g| bipartite::is_bipartite(g) && g.min_degree() == Some(1),
    );
    let verdict = check_hiding(&nbhd, 2, UniverseCoverage::Exhaustive);
    assert!(verdict.is_hiding());
}

#[test]
fn extraction_respects_the_single_node_rule() {
    // Section 2.4: extraction already fails if a SINGLE node outputs no
    // color. Demonstrate with a shrunken universe that misses one view.
    let alphabet = revealing::adversary_alphabet(1);
    let universe = sources::exhaustive_universe(3, &alphabet);
    let nbhd = NbhdGraph::build(
        &revealing::RevealingDecoder::new(2),
        IdMode::Anonymous,
        universe,
        bipartite::is_bipartite,
    );
    let extractor = Extractor::from_nbhd(nbhd, 2).expect("colorable");
    // The degree-4 star center view never occurs at n <= 3.
    let inst = Instance::canonical(generators::star(4));
    let prover = revealing::RevealingProver::new(2);
    let labeling = prover.certify(&inst).unwrap();
    let li = inst.with_labeling(labeling);
    let outputs = extractor.extract_all(&li);
    assert_eq!(outputs[0], None, "center view unknown");
    // Leaves attached at ports 1 and 2 replicate views from P2/P3; leaves
    // at ports 3 and 4 see a port number that no 3-node graph produces.
    assert!(
        outputs[1].is_some() && outputs[2].is_some(),
        "small-port leaf views known"
    );
    assert!(
        outputs[3].is_none() && outputs[4].is_none(),
        "large-port leaf views unknown"
    );
    assert!(!extractor.extraction_succeeds(&li));
}

/// Identifier and port variants do not disturb the anonymous neighborhood
/// graph (anonymous views are assignment-blind), and enrich the Full-mode
/// one without breaking 2-colorability for the revealing LCP.
#[test]
fn nbhd_is_stable_across_assignment_variants() {
    use hiding_lcp::certs::revealing::{RevealingDecoder, RevealingProver};
    use hiding_lcp::core::enumerate::family_variants;
    use hiding_lcp::core::nbhd::sources::prover_labeled;
    let decoder = RevealingDecoder::new(2);
    let prover = RevealingProver::new(2);
    // One port assignment per graph, many id variants.
    let variants = family_variants(
        [generators::cycle(4), generators::path(5)],
        3, // extra id assignments
        0, // canonical ports only
        99,
    );
    let universe = prover_labeled(&prover, variants);
    assert_eq!(universe.len(), 8, "2 graphs x 4 id variants");
    // Anonymous mode: id variants collapse to the canonical views.
    let anon = NbhdGraph::build(&decoder, IdMode::Anonymous, universe.clone(), |g| {
        hiding_lcp::graph::algo::bipartite::is_bipartite(g)
    });
    let anon_base = NbhdGraph::build(
        &decoder,
        IdMode::Anonymous,
        prover_labeled(
            &prover,
            [generators::cycle(4), generators::path(5)].map(Instance::canonical),
        ),
        hiding_lcp::graph::algo::bipartite::is_bipartite,
    );
    assert_eq!(anon.view_count(), anon_base.view_count());
    assert_eq!(anon.edge_count(), anon_base.edge_count());
    // Full mode: more views (ids distinguish), still 2-colorable.
    let full = NbhdGraph::build(&decoder, IdMode::Full, universe, |g| {
        hiding_lcp::graph::algo::bipartite::is_bipartite(g)
    });
    assert!(full.view_count() > anon.view_count());
    assert!(full.k_colorable(2), "the revealing LCP never hides");
}
