//! Theorem 1.5's executable content, end to end:
//!
//! * the upper-bound LCPs (hiding **and** strong) never yield a
//!   refutation — their hiding witnesses cannot be realized;
//! * cheating decoders are refuted through both routes: the adversarial
//!   search (edge-3-coloring on K₄) and the Lemma 5.1 `G_bad`
//!   realization (accept-everything on the identifier pentagon);
//! * the Lemma 6.2 order-invariantization and the finite Ramsey search
//!   compose with real decoders.

use hiding_lcp::certs::degree_one::{DegreeOneDecoder, DegreeOneProver};
use hiding_lcp::certs::edge3::{Edge3Decoder, Edge3Prover};
use hiding_lcp::core::decoder::{run, Decoder, Verdict};
use hiding_lcp::core::instance::{Instance, LabeledInstance};
use hiding_lcp::core::label::Labeling;
use hiding_lcp::core::lower::{refute, search_cycle_decoders, try_realize_walk, RefutationOutcome};
use hiding_lcp::core::nbhd::NbhdGraph;
use hiding_lcp::core::prover::Prover;
use hiding_lcp::core::ramsey::{monochromatic_subset, OrderInvariantized};
use hiding_lcp::core::view::{IdMode, View};
use hiding_lcp::graph::algo::bipartite;
use hiding_lcp::graph::{generators, Graph, IdAssignment, PortAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct YesMan;
impl Decoder for YesMan {
    fn name(&self) -> String {
        "accept-everything".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn id_mode(&self) -> IdMode {
        IdMode::Full
    }
    fn decide(&self, _view: &View) -> Verdict {
        Verdict::Accept
    }
}

/// The pentagon universe of the `refutation` example (five bipartite
/// 6-cycles whose pentagon-member views glue into a realizable odd view
/// cycle).
fn pentagon_universe() -> Vec<LabeledInstance> {
    let pent = |i: i64| -> u64 { ((i - 1).rem_euclid(5) + 1) as u64 };
    (1..=5i64)
        .map(|j| {
            let ids = vec![
                pent(j - 1),
                pent(j),
                pent(j + 1),
                pent(j + 2),
                (6 + 2 * j) as u64,
                (7 + 2 * j) as u64,
            ];
            let mut g = Graph::new(6);
            for k in 0..6usize {
                g.add_edge(k, (k + 1) % 6).unwrap();
            }
            let order = vec![
                vec![1, 5],
                vec![2, 0],
                vec![3, 1],
                vec![4, 2],
                vec![5, 3],
                vec![0, 4],
            ];
            let ports = PortAssignment::from_order(&g, order).unwrap();
            let inst = Instance::new(g, ports, IdAssignment::from_ids(ids, 64).unwrap()).unwrap();
            let n = inst.graph().node_count();
            inst.with_labeling(Labeling::empty(n))
        })
        .collect()
}

#[test]
fn upper_bound_lcps_cannot_be_refuted() {
    // The degree-one LCP is hiding AND strong: refute() must stop at
    // HidingOnly even when fed honest adversarial material.
    let g = generators::path(4);
    let mut universe = Vec::new();
    for ports in hiding_lcp::graph::ports::all_port_assignments(&g, 100) {
        let inst = Instance::new(g.clone(), ports, IdAssignment::canonical(4)).unwrap();
        for labeling in hiding_lcp::certs::degree_one::accepting_labelings(&inst) {
            universe.push(inst.clone().with_labeling(labeling));
        }
    }
    let trap = Instance::canonical(generators::pendant_path(3, 1));
    let adversarial: Vec<Labeling> = hiding_lcp::core::prover::all_labelings(
        trap.graph().node_count(),
        &hiding_lcp::certs::degree_one::adversary_alphabet(),
    )
    .collect();
    let outcome = refute(
        &DegreeOneDecoder,
        universe,
        IdMode::Anonymous,
        |g| bipartite::is_bipartite(g) && g.min_degree() == Some(1),
        &[(trap, adversarial)],
    );
    match outcome {
        RefutationOutcome::HidingOnly { odd_walk } => assert_eq!(odd_walk.len() % 2, 1),
        other => panic!("Lemma 4.1's LCP is strong; got {other:?}"),
    }
}

#[test]
fn edge3_is_refuted_adversarially() {
    let universe: Vec<LabeledInstance> = [generators::path(2), generators::hypercube(3)]
        .into_iter()
        .filter_map(|g| {
            let inst = Instance::canonical(g);
            let labeling = Edge3Prover.certify(&inst)?;
            Some(inst.with_labeling(labeling))
        })
        .collect();
    let k4 = Instance::canonical(generators::complete(4));
    let k4_labeling = Edge3Prover.certify(&k4).unwrap();
    let outcome = refute(
        &Edge3Decoder,
        universe,
        IdMode::Anonymous,
        bipartite::is_bipartite,
        &[(k4, vec![k4_labeling])],
    );
    let RefutationOutcome::Refuted(r) = outcome else {
        panic!("edge3 must be refuted");
    };
    assert!(!r.via_realization);
    assert!(!bipartite::is_bipartite(r.violation_instance.graph()));
}

#[test]
fn pentagon_cycle_realizes_g_bad() {
    let nbhd = NbhdGraph::build(&YesMan, IdMode::Full, pentagon_universe(), |g| {
        bipartite::is_bipartite(g)
    });
    let pent = |i: i64| -> u64 { ((i - 1).rem_euclid(5) + 1) as u64 };
    let walk: Vec<usize> = (1..=5i64)
        .map(|i| {
            (0..nbhd.view_count())
                .find(|&v| {
                    let view = nbhd.view(v);
                    view.center_id() == Some(pent(i))
                        && view.node_with_id(pent(i - 1)).is_some()
                        && view.node_with_id(pent(i + 1)).is_some()
                })
                .expect("pentagon views present")
        })
        .collect();
    // The walk is a genuine odd cycle of V(D, ·).
    for k in 0..5 {
        assert!(nbhd.has_edge(walk[k], walk[(k + 1) % 5]));
    }
    let realization = try_realize_walk(&nbhd, &walk).expect("realizable");
    let g_bad = realization.labeled.graph();
    assert_eq!(g_bad.node_count(), 5);
    assert!(
        !bipartite::is_bipartite(g_bad),
        "G_bad contains the pentagon"
    );
    let verdicts = run(&YesMan, &realization.labeled);
    for i in 1..=5u64 {
        assert!(verdicts[realization.node_of_id[&i]].is_accept());
    }
    // And refute() finds it through the realization route on its own.
    let outcome = refute(
        &YesMan,
        pentagon_universe(),
        IdMode::Full,
        bipartite::is_bipartite,
        &[],
    );
    match outcome {
        RefutationOutcome::Refuted(r) => {
            assert!(r.via_realization, "found by realizing the odd cycle");
            assert!(!bipartite::is_bipartite(r.violation_instance.graph()));
        }
        other => panic!("accept-everything must be refuted, got {other:?}"),
    }
}

#[test]
fn exhaustive_cycle_search_matches_theory() {
    // On C4 alone (exempt class!), the pair-encoding decoder survives all
    // three properties; adding C6 kills every port-oblivious decoder.
    let single = search_cycle_decoders(&[4], &[3, 4, 5]);
    assert!(single.all_three.contains(&18));
    let double = search_cycle_decoders(&[4, 6], &[3, 4, 5, 6]);
    assert!(double.all_three.is_empty());
    // The revealing code is complete+strong but never hiding.
    let reveal = (1 << 2) | (1 << 3);
    assert!(double.complete.contains(&reveal));
    assert!(double.strong.contains(&reveal));
    assert!(!double.hiding.contains(&reveal));
}

#[test]
fn order_invariantization_composes_with_real_decoders() {
    // Wrap the (anonymous, hence trivially order-invariant) degree-one
    // decoder pipeline: route identifiers through a good set found by the
    // finite Ramsey search on an identifier-parity coloring.
    let universe: Vec<u64> = (1..=20).collect();
    let (good, _) =
        monochromatic_subset(&universe, 2, 8, |pair| (pair[0] + pair[1]) % 2).expect("R works");
    assert_eq!(good.len(), 8);

    /// A decoder that cheats by reading identifier parity.
    struct ParityCheat;
    impl Decoder for ParityCheat {
        fn name(&self) -> String {
            "parity-cheat".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn id_mode(&self) -> IdMode {
            IdMode::Full
        }
        fn decide(&self, view: &View) -> Verdict {
            Verdict::from(view.center_id().expect("full") % 2 == 1)
        }
    }

    let wrapped = OrderInvariantized::new(ParityCheat, good);
    let inst = Instance::canonical(generators::path(5));
    let labeling = Labeling::empty(5);
    let mut rng = StdRng::seed_from_u64(9);
    hiding_lcp::core::properties::invariance::check_order_invariant(
        &wrapped, &inst, &labeling, 40, &mut rng,
    )
    .expect("the wrapper is order-invariant by construction");
}

#[test]
fn honest_provers_feed_the_refuter_nothing() {
    // Sanity: refute() with an empty universe reports no hiding witness.
    let outcome = refute(
        &DegreeOneDecoder,
        Vec::new(),
        IdMode::Anonymous,
        |_g| true,
        &[],
    );
    assert!(matches!(outcome, RefutationOutcome::NoHidingWitness));
    // And an honest labeled instance alone yields a bipartite V(D, ·).
    let inst = Instance::canonical(generators::path(4));
    let labeling = DegreeOneProver.certify(&inst).unwrap();
    let outcome = refute(
        &DegreeOneDecoder,
        vec![inst.with_labeling(labeling)],
        IdMode::Anonymous,
        bipartite::is_bipartite,
        &[],
    );
    assert!(matches!(outcome, RefutationOutcome::NoHidingWitness));
}
