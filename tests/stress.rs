//! Heavy sweeps, ignored by default. Run with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! These push the same invariants as the regular suites at scales the
//! default `cargo test` budget should not pay for.

use hiding_lcp::certs::{degree_one, even_cycle, shatter, watermelon};
use hiding_lcp::core::decoder::accepts_all;
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::language::KCol;
use hiding_lcp::core::nbhd::{sources, NbhdGraph};
use hiding_lcp::core::network::run_distributed;
use hiding_lcp::core::properties::strong;
use hiding_lcp::core::prover::Prover;
use hiding_lcp::core::view::IdMode;
use hiding_lcp::graph::algo::bipartite;
use hiding_lcp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Lemma 3.1 sweep over every 5-node tree (the H1 members at n = 5:
/// the path, the star and the spider), every port assignment, every
/// 4-letter labeling (~45k labeled instances).
#[test]
#[ignore = "minutes-scale exhaustive sweep"]
fn degree_one_exhaustive_trees_n5() {
    use hiding_lcp::graph::Graph;
    let alphabet = vec![
        degree_one::Letter::Zero.encode(),
        degree_one::Letter::One.encode(),
        degree_one::Letter::Bot.encode(),
        degree_one::Letter::Top.encode(),
    ];
    let trees = [
        generators::path(5),
        generators::star(4),
        // The "chair": a path of 4 with one extra leaf at position 1.
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 4)]).unwrap(),
    ];
    let mut nbhd = NbhdGraph::empty(1, IdMode::Anonymous);
    for g in trees {
        for ports in hiding_lcp::graph::ports::all_port_assignments(&g, 1_000) {
            let inst = Instance::new(
                g.clone(),
                ports,
                hiding_lcp::graph::IdAssignment::canonical(5),
            )
            .unwrap();
            let batch = sources::with_all_labelings(&inst, &alphabet, None);
            nbhd.extend(&degree_one::DegreeOneDecoder, batch, |g| {
                bipartite::is_bipartite(g) && g.min_degree() == Some(1)
            });
        }
    }
    assert!(
        nbhd.odd_cycle().is_some(),
        "hiding survives the n = 5 tree sweep"
    );
    assert!(nbhd.view_count() > 30);
}

/// 100k random forgeries per LCP per no-instance.
#[test]
#[ignore = "large randomized campaign"]
fn strong_soundness_100k_random_forgeries() {
    let two_col = KCol::new(2);
    let mut rng = StdRng::seed_from_u64(4242);
    for g in [
        generators::cycle(5),
        generators::petersen(),
        generators::complete(4),
        generators::watermelon(&[3, 4, 5]),
    ] {
        let inst = Instance::canonical(g);
        strong::check_strong_random(
            &degree_one::DegreeOneDecoder,
            &two_col,
            &inst,
            &degree_one::adversary_alphabet(),
            100_000,
            &mut rng,
        )
        .expect("degree-one strong at scale");
        strong::check_strong_random(
            &even_cycle::EvenCycleDecoder,
            &two_col,
            &inst,
            &even_cycle::adversary_alphabet(),
            100_000,
            &mut rng,
        )
        .expect("even-cycle strong at scale");
        let shatter_alphabet: Vec<_> = shatter::adversary_labelings(&inst)
            .iter()
            .flat_map(|l| l.as_slice().to_vec())
            .collect();
        strong::check_strong_random(
            &shatter::ShatterDecoder,
            &two_col,
            &inst,
            &shatter_alphabet,
            100_000,
            &mut rng,
        )
        .expect("shatter strong at scale");
        let melon_alphabet: Vec<_> = watermelon::adversary_labelings(&inst)
            .iter()
            .flat_map(|l| l.as_slice().to_vec())
            .collect();
        strong::check_strong_random(
            &watermelon::WatermelonDecoder,
            &two_col,
            &inst,
            &melon_alphabet,
            100_000,
            &mut rng,
        )
        .expect("watermelon strong at scale");
    }
}

/// Large honest instances verify centrally and distributively.
#[test]
#[ignore = "large instances"]
fn large_instances_verify_both_ways() {
    let mut rng = StdRng::seed_from_u64(7);
    // A 2000-node random pendant forest for degree-one.
    let tree = generators::random_tree(2_000, &mut rng);
    let inst = Instance::canonical(tree);
    let labeling = degree_one::DegreeOneProver.certify(&inst).expect("trees");
    let li = inst.with_labeling(labeling);
    assert!(accepts_all(&degree_one::DegreeOneDecoder, &li));
    assert!(run_distributed(&degree_one::DegreeOneDecoder, &li)
        .iter()
        .all(|v| v.is_accept()));
    // A 2000-node even cycle.
    let inst = Instance::canonical(generators::cycle(2_000));
    let labeling = even_cycle::EvenCycleProver.certify(&inst).expect("even");
    let li = inst.with_labeling(labeling);
    assert!(accepts_all(&even_cycle::EvenCycleDecoder, &li));
    // A 64-slice watermelon (n = 962).
    let inst = Instance::canonical(generators::watermelon(&[16; 64]));
    let labeling = watermelon::WatermelonProver
        .certify(&inst)
        .expect("even slices");
    assert!(accepts_all(
        &watermelon::WatermelonDecoder,
        &inst.with_labeling(labeling)
    ));
}
