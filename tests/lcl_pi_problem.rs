//! The LCL problem Π (Section 1) end to end with the paper's real LCPs:
//! solvable on arbitrary inputs thanks to strong soundness; unsolvable by
//! view-based rules against the even-cycle scheme (the self-loop defeat).

use hiding_lcp::certs::{degree_one, even_cycle};
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::lcl::{view_rule_counterexample, PiProblem};
use hiding_lcp::core::prover::{random_labeling, Prover};
use hiding_lcp::core::view::IdMode;
use hiding_lcp::graph::generators;
use hiding_lcp_bench as workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pi_is_solvable_with_degree_one_certificates_on_anything() {
    let pi = PiProblem::new(degree_one::DegreeOneDecoder);
    let mut rng = StdRng::seed_from_u64(42);
    let mut solved = 0;
    let graphs = [
        generators::path(12),
        generators::cycle(9),
        generators::petersen(),
        generators::complete(5),
        generators::pendant_path(7, 3),
        generators::watermelon(&[2, 3, 4]),
    ];
    for g in graphs {
        let inst = Instance::canonical(g);
        // Honest certificates where possible, junk everywhere.
        let candidates: Vec<_> = std::iter::once(
            degree_one::DegreeOneProver
                .certify(&inst)
                .unwrap_or_else(|| {
                    random_labeling(
                        inst.graph().node_count(),
                        &degree_one::adversary_alphabet(),
                        &mut rng,
                    )
                }),
        )
        .chain((0..20).map(|_| {
            random_labeling(
                inst.graph().node_count(),
                &degree_one::adversary_alphabet(),
                &mut rng,
            )
        }))
        .collect();
        for labeling in candidates {
            let li = inst.clone().with_labeling(labeling);
            let outputs = pi.solve_by_bipartition(&li).expect("strong soundness");
            assert!(pi.is_valid_output(&li, &outputs));
            solved += 1;
        }
    }
    assert_eq!(solved, 6 * 21);
}

#[test]
fn pi_with_even_cycle_certificates_defeats_view_rules() {
    // The even-cycle scheme's witness universe has a self-loop: a pair of
    // adjacent accepting nodes with identical views. Any fixed function
    // from views to colors ties them — demonstrated by actually running
    // three candidate "rules".
    let nbhd = workloads::even_cycle_nbhd();
    let (idx, (u, v)) = view_rule_counterexample(&nbhd).expect("self-loop exists");
    let li = &nbhd.instances()[idx];
    assert!(li.graph().has_edge(u, v));
    let pi = PiProblem::new(even_cycle::EvenCycleDecoder);

    // Rule 1: hash the view's debug string. Rule 2: first color byte seen.
    // Rule 3: constant. All are view functions; all must fail at {u, v}.
    type Rule = Box<dyn Fn(&hiding_lcp::core::view::View) -> usize>;
    let rules: Vec<Rule> = vec![
        Box::new(|view| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            view.hash(&mut h);
            (h.finish() % 3) as usize
        }),
        Box::new(|view| usize::from(view.center_label().bytes().first().copied().unwrap_or(0)) % 3),
        Box::new(|_| 0),
    ];
    for (ri, rule) in rules.iter().enumerate() {
        let outputs: Vec<usize> = li
            .graph()
            .nodes()
            .map(|w| rule(&li.view(w, 1, IdMode::Anonymous)))
            .collect();
        assert_eq!(
            outputs[u], outputs[v],
            "rule {ri}: identical views force identical colors"
        );
        assert!(
            !pi.is_valid_output(li, &outputs),
            "rule {ri} must fail Π on the witness instance"
        );
    }

    // The non-local solver succeeds on the very same instance.
    let outputs = pi.solve_by_bipartition(li).expect("strongly sound");
    assert!(pi.is_valid_output(li, &outputs));
}
