//! Property-based tests (proptest) over randomly generated graphs,
//! labelings and assignments, spanning all three crates.

use hiding_lcp::certs::{degree_one, even_cycle, revealing, shatter, watermelon};
use hiding_lcp::core::decoder::{accepts_all, run, Decoder};
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::label::Labeling;
use hiding_lcp::core::language::KCol;
use hiding_lcp::core::properties::strong;
use hiding_lcp::core::prover::{random_labeling, Prover};
use hiding_lcp::core::view::IdMode;
use hiding_lcp::graph::algo::{bipartite, coloring};
use hiding_lcp::graph::{generators, Graph, IdAssignment};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random connected-ish graph from a seed: a random tree plus a few
/// random extra edges.
fn seeded_graph(seed: u64, n: usize, extra: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = generators::random_tree(n, &mut rng);
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 50 {
        attempts += 1;
        let u = rand::Rng::random_range(&mut rng, 0..n);
        let v = rand::Rng::random_range(&mut rng, 0..n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).unwrap();
            added += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bipartiteness ⟺ 2-colorability ⟺ no odd-cycle certificate.
    #[test]
    fn bipartite_iff_two_colorable(seed in 0u64..5_000, n in 2usize..14, extra in 0usize..5) {
        let g = seeded_graph(seed, n, extra);
        let bip = bipartite::bipartition(&g);
        prop_assert_eq!(bip.is_ok(), coloring::is_k_colorable(&g, 2));
        match bip {
            Ok(sides) => {
                for (u, v) in g.edges() {
                    prop_assert_ne!(sides[u], sides[v]);
                }
            }
            Err(cycle) => {
                prop_assert_eq!(cycle.len() % 2, 1);
                for i in 0..cycle.len() {
                    prop_assert!(g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
                }
            }
        }
    }

    /// Anonymous views are invariant under identifier permutations.
    #[test]
    fn anonymous_views_ignore_ids(seed in 0u64..5_000, n in 2usize..10) {
        let g = seeded_graph(seed, n, 2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let a = Instance::random(g.clone(), &mut rng);
        let b = Instance::new(
            g.clone(),
            a.ports().clone(),
            IdAssignment::random(n, 4 * n as u64 + 8, &mut rng),
        ).unwrap();
        let labeling = random_labeling(
            n,
            &degree_one::adversary_alphabet(),
            &mut rng,
        );
        for v in g.nodes() {
            prop_assert_eq!(
                a.view(&labeling, v, 1, IdMode::Anonymous),
                b.view(&labeling, v, 1, IdMode::Anonymous)
            );
        }
    }

    /// Order-only views are invariant under order-preserving remappings.
    #[test]
    fn order_views_respect_order(seed in 0u64..5_000, n in 2usize..10, r in 1usize..3) {
        let g = seeded_graph(seed, n, 2);
        let inst = Instance::canonical(g.clone());
        let stretched = inst
            .replace_ids(inst.ids().remap_order_preserving(|i| i * 7 + 3))
            .unwrap();
        let labeling = Labeling::empty(n);
        for v in g.nodes() {
            prop_assert_eq!(
                inst.view(&labeling, v, r, IdMode::OrderOnly),
                stretched.view(&labeling, v, r, IdMode::OrderOnly)
            );
        }
    }

    /// The revealing prover's output is always unanimously accepted on
    /// bipartite graphs, and the decoder's accepting set is always
    /// 2-colorable under random labels — on ANY graph.
    #[test]
    fn revealing_lcp_invariants(seed in 0u64..5_000, n in 2usize..12, extra in 0usize..4) {
        let g = seeded_graph(seed, n, extra);
        let inst = Instance::canonical(g.clone());
        let decoder = revealing::RevealingDecoder::new(2);
        if let Some(labeling) = revealing::RevealingProver::new(2).certify(&inst) {
            prop_assert!(bipartite::is_bipartite(&g));
            prop_assert!(accepts_all(&decoder, &inst.clone().with_labeling(labeling)));
        } else {
            prop_assert!(!bipartite::is_bipartite(&g));
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let two_col = KCol::new(2);
        let labeling = random_labeling(n, &revealing::adversary_alphabet(2), &mut rng);
        prop_assert!(strong::strong_holds_for(&decoder, &two_col, &inst, &labeling).is_ok());
    }

    /// Degree-one LCP: prover accepted on every bipartite min-degree-one
    /// graph; strong soundness under random 4-letter labels on any graph.
    #[test]
    fn degree_one_invariants(seed in 0u64..5_000, n in 2usize..12, extra in 0usize..4) {
        let g = seeded_graph(seed, n, extra);
        let inst = Instance::canonical(g.clone());
        match degree_one::DegreeOneProver.certify(&inst) {
            Some(labeling) => {
                prop_assert!(bipartite::is_bipartite(&g));
                prop_assert!(g.min_degree() == Some(1));
                prop_assert!(accepts_all(
                    &degree_one::DegreeOneDecoder,
                    &inst.clone().with_labeling(labeling)
                ));
            }
            None => prop_assert!(
                !bipartite::is_bipartite(&g) || g.min_degree() != Some(1)
            ),
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
        let two_col = KCol::new(2);
        for _ in 0..8 {
            let labeling = random_labeling(n, &degree_one::adversary_alphabet(), &mut rng);
            prop_assert!(strong::strong_holds_for(
                &degree_one::DegreeOneDecoder, &two_col, &inst, &labeling
            ).is_ok());
        }
    }

    /// Even-cycle LCP under arbitrary ports: complete on even cycles,
    /// rejecting somewhere on odd cycles even for honest-looking labels.
    #[test]
    fn even_cycle_invariants(n in 3usize..16, seed in 0u64..5_000) {
        let g = generators::cycle(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = Instance::random(g, &mut rng);
        match even_cycle::EvenCycleProver.certify(&inst) {
            Some(labeling) => {
                prop_assert_eq!(n % 2, 0);
                prop_assert!(accepts_all(
                    &even_cycle::EvenCycleDecoder,
                    &inst.clone().with_labeling(labeling)
                ));
            }
            None => prop_assert_eq!(n % 2, 1),
        }
        let two_col = KCol::new(2);
        for _ in 0..8 {
            let labeling =
                random_labeling(n, &even_cycle::adversary_alphabet(), &mut rng);
            prop_assert!(strong::strong_holds_for(
                &even_cycle::EvenCycleDecoder, &two_col, &inst, &labeling
            ).is_ok());
        }
    }

    /// Watermelon LCP: the prover accepts exactly the uniform-parity
    /// profiles, and honest certificates verify under random ports/ids.
    #[test]
    fn watermelon_invariants(
        profile in proptest::collection::vec(2usize..6, 1..5),
        seed in 0u64..5_000,
    ) {
        let g = generators::watermelon(&profile);
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = Instance::random(g, &mut rng);
        let uniform_parity = profile.windows(2).all(|w| w[0] % 2 == w[1] % 2);
        match watermelon::WatermelonProver.certify(&inst) {
            Some(labeling) => {
                prop_assert!(uniform_parity);
                prop_assert!(accepts_all(
                    &watermelon::WatermelonDecoder,
                    &inst.with_labeling(labeling)
                ));
            }
            None => prop_assert!(!uniform_parity),
        }
    }

    /// Shatter LCP: honest certificates verify on caterpillars of any
    /// shape under random identifiers.
    #[test]
    fn shatter_invariants(spine in 5usize..10, legs in 0usize..3, seed in 0u64..5_000) {
        let g = generators::caterpillar(spine, legs);
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = Instance::random(g, &mut rng);
        let labeling = shatter::ShatterProver
            .certify(&inst)
            .expect("caterpillars with spine >= 5 shatter");
        prop_assert!(accepts_all(&shatter::ShatterDecoder, &inst.with_labeling(labeling)));
    }

    /// Decoder verdicts agree between a decoder and itself run through a
    /// trait object (exercises the blanket impls).
    #[test]
    fn trait_object_transparency(seed in 0u64..5_000, n in 2usize..8) {
        let g = seeded_graph(seed, n, 1);
        let inst = Instance::canonical(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let labeling = random_labeling(n, &degree_one::adversary_alphabet(), &mut rng);
        let li = inst.with_labeling(labeling);
        let boxed: Box<dyn Decoder> = Box::new(degree_one::DegreeOneDecoder);
        prop_assert_eq!(run(&degree_one::DegreeOneDecoder, &li), run(&boxed, &li));
    }
}

/// Caterpillars with spine ≥ 5 indeed always have a shatter point (used
/// by the proptest above) — spine 4 with no legs is P4, which does not.
#[test]
fn caterpillar_shatter_sanity() {
    assert!(
        hiding_lcp::graph::classes::shatter::shatter_points(&generators::caterpillar(4, 0))
            .is_empty()
    );
    for spine in 5..10 {
        for legs in 0..3 {
            let g = generators::caterpillar(spine, legs);
            assert!(
                !hiding_lcp::graph::classes::shatter::shatter_points(&g).is_empty(),
                "spine={spine} legs={legs}"
            );
        }
    }
}

/// Random port assignments never change an anonymous decoder's acceptance
/// of prover-labeled even cycles (the labels embed the ports).
#[test]
fn even_cycle_all_ports_consistency() {
    let g = generators::cycle(6);
    for ports in hiding_lcp::graph::ports::all_port_assignments(&g, 100) {
        let inst = Instance::new(g.clone(), ports, IdAssignment::canonical(6)).unwrap();
        let labeling = even_cycle::EvenCycleProver.certify(&inst).unwrap();
        assert!(accepts_all(
            &even_cycle::EvenCycleDecoder,
            &inst.with_labeling(labeling)
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 5.1 round trip on random trees: realizing the full view set
    /// of an instance reproduces every view exactly.
    #[test]
    fn realize_roundtrip_on_random_trees(seed in 0u64..5_000, n in 2usize..10, r in 1usize..3) {
        use hiding_lcp::core::label::Labeling;
        use hiding_lcp::core::realize::{find_plan, realize};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        let inst = Instance::random(g, &mut rng);
        let labeling = Labeling::empty(n);
        let views: Vec<_> = (0..n).map(|v| inst.view(&labeling, v, r, IdMode::Full)).collect();
        let plan = find_plan(&views, &[]).expect("single instances self-realize");
        let realization = realize(&plan).expect("merge succeeds");
        for mu in &views {
            prop_assert!(realization.reproduces(mu));
        }
        prop_assert_eq!(
            realization.labeled.graph().edge_count(),
            inst.graph().edge_count()
        );
    }

    /// The message-passing simulation agrees with omniscient view
    /// extraction on random graphs, all radii and id modes.
    #[test]
    fn network_simulation_matches_extraction(seed in 0u64..5_000, n in 2usize..9, extra in 0usize..4) {
        use hiding_lcp::core::network::simulate_views;
        let g = seeded_graph(seed, n, extra);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a);
        let inst = Instance::random(g.clone(), &mut rng);
        let labeling = random_labeling(n, &degree_one::adversary_alphabet(), &mut rng);
        let li = inst.with_labeling(labeling);
        for radius in 0..3usize {
            for mode in [IdMode::Full, IdMode::OrderOnly, IdMode::Anonymous] {
                let simulated = simulate_views(&li, radius, mode);
                for v in g.nodes() {
                    prop_assert_eq!(&simulated[v], &li.view(v, radius, mode));
                }
            }
        }
    }

    /// The distributed verifier run agrees with the centralized one for
    /// every LCP on honest instances.
    #[test]
    fn distributed_verification_agrees(seed in 0u64..5_000) {
        use hiding_lcp::core::network::run_distributed;
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = Instance::random(generators::path(7), &mut rng);
        let labeling = degree_one::DegreeOneProver.certify(&inst).expect("paths");
        let li = inst.with_labeling(labeling);
        prop_assert_eq!(
            run_distributed(&degree_one::DegreeOneDecoder, &li),
            run(&degree_one::DegreeOneDecoder, &li)
        );
        let inst = Instance::random(generators::cycle(8), &mut rng);
        let labeling = even_cycle::EvenCycleProver.certify(&inst).expect("even cycle");
        let li = inst.with_labeling(labeling);
        prop_assert_eq!(
            run_distributed(&even_cycle::EvenCycleDecoder, &li),
            run(&even_cycle::EvenCycleDecoder, &li)
        );
    }

    /// Canonical keys are invariant under random relabelings (graph
    /// isomorphism smoke test).
    #[test]
    fn canonical_keys_are_relabeling_invariant(seed in 0u64..5_000, n in 1usize..8) {
        use hiding_lcp::graph::canon;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = seeded_graph(seed, n, 2);
        // Random permutation of node indices.
        let mut perm: Vec<usize> = (0..n).collect();
        rand::seq::SliceRandom::shuffle(&mut perm[..], &mut rng);
        let edges: Vec<(usize, usize)> = g.edges().map(|(u, v)| (perm[u], perm[v])).collect();
        let h = Graph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(canon::canonical_key(&g), canon::canonical_key(&h));
        prop_assert!(canon::are_isomorphic(&g, &h));
    }
}
