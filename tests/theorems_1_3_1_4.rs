//! End-to-end verification of the non-anonymous upper bounds: the
//! shatter-point LCP (Theorem 1.3) and the watermelon LCP (Theorem 1.4),
//! including their certificate-size claims and the proofs' hiding
//! witnesses.

use hiding_lcp::certs::{shatter, watermelon};
use hiding_lcp::core::decoder::accepts_all;
use hiding_lcp::core::instance::Instance;
use hiding_lcp::core::language::KCol;
use hiding_lcp::core::properties::{completeness, strong};
use hiding_lcp::core::prover::Prover;
use hiding_lcp::core::view::IdMode;
use hiding_lcp::graph::classes::shatter as shatter_class;
use hiding_lcp::graph::{generators, Graph};
use hiding_lcp_bench as workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spider(legs: usize, len: usize) -> Graph {
    let mut g = Graph::new(1 + legs * len);
    for l in 0..legs {
        let mut prev = 0usize;
        for k in 0..len {
            let node = 1 + l * len + k;
            g.add_edge(prev, node).unwrap();
            prev = node;
        }
    }
    g
}

#[test]
fn shatter_full_dossier() {
    // Completeness on a spread of shatter-point graphs.
    let instances = vec![
        Instance::canonical(generators::path(8)),
        Instance::canonical(generators::path(30)),
        Instance::canonical(spider(3, 3)),
        Instance::canonical(spider(6, 4)),
        Instance::canonical(generators::caterpillar(8, 1)),
    ];
    let report = completeness::check_completeness(
        &shatter::ShatterDecoder,
        &shatter::ShatterProver,
        instances,
    );
    assert!(report.all_passed(), "{:?}", report.failures);

    // Certificate size: O(k + log n) bits where k = component count.
    let inst = Instance::canonical(spider(6, 4));
    let labeling = shatter::ShatterProver.certify(&inst).unwrap();
    let k = shatter_class::decompose(inst.graph())
        .unwrap()
        .components
        .len();
    assert_eq!(k, 6);
    let width = shatter::id_width(inst.ids().bound());
    assert_eq!(labeling.max_bits(), (2 + width + k) * 8);

    // Strong soundness.
    let two_col = KCol::new(2);
    let mut rng = StdRng::seed_from_u64(7);
    for g in [
        generators::cycle(3),
        generators::cycle(7),
        generators::pendant_path(5, 3),
        spider(3, 3),
        generators::complete(4),
    ] {
        let inst = Instance::canonical(g);
        for labeling in shatter::adversary_labelings(&inst) {
            strong::strong_holds_for(&shatter::ShatterDecoder, &two_col, &inst, &labeling)
                .expect("strongly sound");
        }
        let alphabet: Vec<_> = shatter::adversary_labelings(&inst)
            .iter()
            .flat_map(|l| l.as_slice().to_vec())
            .collect();
        strong::check_strong_random(
            &shatter::ShatterDecoder,
            &two_col,
            &inst,
            &alphabet,
            1_500,
            &mut rng,
        )
        .expect("strongly sound under random recombination");
    }

    // Hiding: the paper's P1/P2 witness pair.
    let nbhd = workloads::shatter_nbhd();
    let odd = nbhd.odd_cycle().expect("Theorem 1.3 hides");
    assert_eq!(odd.len() % 2, 1);
    // The witness views really coincide across the two instances.
    let ws = shatter::hiding_witness_instances();
    assert_eq!(
        ws[0].view(0, 1, IdMode::Full),
        ws[1].view(0, 1, IdMode::Full)
    );
    assert_eq!(
        ws[0].view(7, 1, IdMode::Full),
        ws[1].view(6, 1, IdMode::Full)
    );
}

#[test]
fn watermelon_full_dossier() {
    let mut rng = StdRng::seed_from_u64(11);
    let instances: Vec<Instance> = vec![
        Instance::canonical(generators::watermelon(&[2, 2])),
        Instance::canonical(generators::watermelon(&[3, 5, 7, 9])),
        Instance::canonical(generators::watermelon(&[2; 12])),
        Instance::canonical(generators::watermelon(&[10, 10, 10])),
        Instance::random(generators::watermelon(&[4, 4, 6]), &mut rng),
        Instance::canonical(generators::cycle(16)),
        Instance::canonical(generators::path(9)),
    ];
    let report = completeness::check_completeness(
        &watermelon::WatermelonDecoder,
        &watermelon::WatermelonProver,
        instances,
    );
    assert!(report.all_passed(), "{:?}", report.failures);

    // O(log n) certificates: sizes grow with the identifier width only.
    let small = Instance::canonical(generators::watermelon(&[4, 4]));
    let large = Instance::canonical(generators::watermelon(&[40; 40]));
    let small_bits = watermelon::WatermelonProver
        .certify(&small)
        .unwrap()
        .max_bits();
    let large_bits = watermelon::WatermelonProver
        .certify(&large)
        .unwrap()
        .max_bits();
    assert!(small_bits < large_bits, "identifier width grows");
    let width = shatter::id_width(large.ids().bound());
    assert_eq!(large_bits, (7 + 2 * width) * 8);

    // Strong soundness under structured + random adversaries.
    let two_col = KCol::new(2);
    for g in [
        generators::watermelon(&[2, 3]),
        generators::watermelon(&[2, 3, 3]),
        generators::cycle(5),
        generators::complete(4),
    ] {
        let inst = Instance::canonical(g);
        for labeling in watermelon::adversary_labelings(&inst) {
            strong::strong_holds_for(&watermelon::WatermelonDecoder, &two_col, &inst, &labeling)
                .expect("strongly sound");
        }
        let alphabet: Vec<_> = watermelon::adversary_labelings(&inst)
            .iter()
            .flat_map(|l| l.as_slice().to_vec())
            .collect();
        strong::check_strong_random(
            &watermelon::WatermelonDecoder,
            &two_col,
            &inst,
            &alphabet,
            1_500,
            &mut rng,
        )
        .expect("strongly sound under random recombination");
    }

    // Hiding: the id-swap universe produces an odd closed walk, and all
    // of its instances are unanimously accepted.
    for li in watermelon::hiding_witness_universe() {
        assert!(accepts_all(&watermelon::WatermelonDecoder, &li));
    }
    let nbhd = workloads::watermelon_nbhd();
    let odd = nbhd.odd_cycle().expect("Theorem 1.4 hides");
    assert_eq!(odd.len() % 2, 1);
}

/// The escape hatch that lets Theorems 1.3/1.4 coexist with Theorem 1.5:
/// Theorem 1.5 kills strong+hiding **order-invariant** LCPs of any
/// certificate size, and the Section 7 decoders are genuinely not
/// order-invariant — their certificates embed identifier *values*, so an
/// order-preserving remap of the instance's identifiers (with certificates
/// held fixed) flips verdicts. The anonymous Theorem 1.1 decoders, by
/// contrast, are untouched by any remap.
#[test]
fn section_7_decoders_are_not_order_invariant() {
    use hiding_lcp::certs::{degree_one, even_cycle};
    use hiding_lcp::core::properties::invariance;
    let mut rng = StdRng::seed_from_u64(77);

    // Shatter: honest certificates on P8, then remapped ids.
    let inst = Instance::canonical(generators::path(8));
    let labeling = shatter::ShatterProver.certify(&inst).unwrap();
    assert!(
        invariance::check_order_invariant(&shatter::ShatterDecoder, &inst, &labeling, 40, &mut rng)
            .is_err(),
        "shatter certificates pin identifier values"
    );

    // Watermelon: same story.
    let inst = Instance::canonical(generators::watermelon(&[2, 4]));
    let labeling = watermelon::WatermelonProver.certify(&inst).unwrap();
    assert!(
        invariance::check_order_invariant(
            &watermelon::WatermelonDecoder,
            &inst,
            &labeling,
            40,
            &mut rng
        )
        .is_err(),
        "watermelon certificates pin identifier values"
    );

    // The anonymous Theorem 1.1 decoders pass both invariance checks by
    // construction.
    let inst = Instance::canonical(generators::path(6));
    let labeling = degree_one::DegreeOneProver.certify(&inst).unwrap();
    assert!(invariance::check_order_invariant(
        &degree_one::DegreeOneDecoder,
        &inst,
        &labeling,
        20,
        &mut rng
    )
    .is_ok());
    assert!(invariance::check_anonymous(
        &degree_one::DegreeOneDecoder,
        &inst,
        &labeling,
        20,
        &mut rng
    )
    .is_ok());
    let inst = Instance::canonical(generators::cycle(6));
    let labeling = even_cycle::EvenCycleProver.certify(&inst).unwrap();
    assert!(invariance::check_anonymous(
        &even_cycle::EvenCycleDecoder,
        &inst,
        &labeling,
        20,
        &mut rng
    )
    .is_ok());
}
